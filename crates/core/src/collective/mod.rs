//! The algorithm-selectable collective engine.
//!
//! SCI-MPICH inherits MPICH's collectives, which are implemented on top
//! of point-to-point messages. The reproduction grew the same way — one
//! linear/binomial schedule per operation — and this module generalises
//! that into an *engine*: every collective is a rank-symmetric
//! communication plan ([`plan`]) walked by an executor ([`algos`]) over
//! the runtime's primitives — symmetric sendrecv exchanges, nonblocking
//! requests, and one-sided PSCW windows.
//!
//! ## Algorithm selection
//!
//! [`crate::CollectiveAlgo`] in [`crate::Tuning`] picks the schedule:
//! `Auto` (the default) selects per call from the message size, the rank
//! count, and the fabric topology (a single SCI ringlet makes the
//! neighbour-ring schedules attractive — every hop is one B-Link
//! traversal); any other value forces one algorithm family for every
//! collective. Families that make no sense for an operation alias to the
//! nearest sensible schedule (e.g. a forced `Bruck` broadcast runs the
//! binomial tree) — the `coll.algo.*` counters always record the
//! schedule that actually executed. Selection inputs are symmetric by
//! construction: buffer length for the symmetric-count collectives, a
//! control-plane agreement (one [`Rank::collective_gather`]) for ragged
//! `allgather` under `Auto`, and the `MPI_Alltoall` uniform-block
//! contract for `alltoall` (identical block sizes everywhere, so a
//! purely local predicate already agrees) — every member derives the
//! same plan.
//!
//! ## What rides along for free
//!
//! Because every byte a collective moves rides [`Rank::send`] /
//! [`Rank::recv`] / [`crate::Window::put`], the data-integrity machinery
//! ([`crate::IntegrityMode`], see `docs/INTEGRITY.md`) covers collectives
//! with no code of their own, and eager-credit flow control (see
//! `docs/BACKPRESSURE.md`) meters each edge like any send. Collectives
//! run as *reliable sections* — a lossy [`crate::OverloadPolicy`]
//! applied to an internal edge would wedge peers already committed to
//! the collective, so inside one, credit exhaustion always falls back to
//! `Stall`.
//!
//! Every collective returns `Result<_, ScimpiError>`: a dead partner
//! surfaces as [`ScimpiError::PeerDead`] at the first failed edge
//! instead of hanging; out-of-range arguments surface as
//! [`ScimpiError::InvalidArg`] through the same
//! [`crate::ErrorMode`] path. Under the default `ErrorsAreFatal` the
//! error aborts the run before the `Err` is observed, so infallible call
//! sites can simply `.unwrap()` (or use [`crate::Done::done`]).
//!
//! The datatype-aware variants (`bcast_typed`, `allreduce_typed`,
//! `allgatherv_typed`) move non-contiguous layouts through the
//! pack-path selector on every tree edge instead of forcing the caller
//! to pack — see `docs/COLLECTIVES.md`.

pub(crate) mod algos;
mod dtype;
pub(crate) mod naive;
pub(crate) mod plan;

use crate::error::ScimpiError;
use crate::osc::{WinMemory, Window};
use crate::runtime::Rank;
use crate::tuning::CollectiveAlgo;
use mpi_datatype::typed;
use sci_fabric::Topology;
use simclock::SimTime;

/// Internal tag space for collectives (kept out of user tag space).
///
/// Offsets: `+0` tree data, `+1` gather lengths, `+2` all-to-all blocks,
/// `+3` scan prefixes, `+4`/`+5` scatterv lengths/data, `+6`/`+7`
/// allgather stream lengths/data, `+8` allreduce exchanges, `+9`
/// all-to-all-v counts, `+10`/`+11` typed-collective lengths/elements.
pub(crate) const COLL_TAG: i32 = i32::MIN + 7;

/// What [`Rank::alltoallv`] hands back: the received bytes flattened in
/// source-rank order, plus the per-source counts and displacements that
/// index into them.
pub type AlltoallvParts = (Vec<u8>, Vec<usize>, Vec<usize>);

/// Record a collective-operation span (a single relaxed load when
/// recording is off). Spans feed the per-family latency histograms of the
/// `PROFILE` report as well as the Chrome trace; they never touch the
/// clock, so enabling them cannot perturb virtual time.
pub(crate) fn coll_span(rank: &Rank, name: &'static str, start: SimTime, bytes: usize) {
    if obs::is_enabled() {
        obs::span(
            name,
            start,
            rank.clock.now(),
            vec![("bytes", obs::Arg::U64(bytes as u64))],
        );
    }
}

/// Reduction operators for the numeric collectives.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum ReduceOp {
    /// Element-wise sum (wrapping for the integer element types).
    Sum,
    /// Element-wise maximum.
    Max,
    /// Element-wise minimum.
    Min,
}

/// Element types the reduction collectives ([`Rank::reduce`],
/// [`Rank::allreduce`], [`Rank::scan`], `allreduce_typed`) operate on:
/// every fixed-width little-endian wire element
/// ([`mpi_datatype::typed::Element`]) that knows how to combine under a
/// [`ReduceOp`].
pub trait Typed: typed::Element + Send + Sync + 'static {
    /// `a ⊕ b` under `op`, with `a` the accumulator (left operand). All
    /// schedules combine in ascending-rank operand order, so any two
    /// algorithms produce bit-identical results whenever `⊕` is
    /// associative (integer ops always; floats when the values make
    /// rounding exact).
    fn combine(op: ReduceOp, a: Self, b: Self) -> Self;
}

macro_rules! impl_typed_int {
    ($($t:ty),*) => {$(
        impl Typed for $t {
            fn combine(op: ReduceOp, a: Self, b: Self) -> Self {
                match op {
                    ReduceOp::Sum => a.wrapping_add(b),
                    ReduceOp::Max => a.max(b),
                    ReduceOp::Min => a.min(b),
                }
            }
        }
    )*};
}

macro_rules! impl_typed_float {
    ($($t:ty),*) => {$(
        impl Typed for $t {
            fn combine(op: ReduceOp, a: Self, b: Self) -> Self {
                match op {
                    ReduceOp::Sum => a + b,
                    ReduceOp::Max => a.max(b),
                    ReduceOp::Min => a.min(b),
                }
            }
        }
    )*};
}

impl_typed_int!(u8, i8, u16, i16, u32, i32, u64, i64);
impl_typed_float!(f32, f64);

/// The shared PSCW window the one-sided ring schedules stage chunks
/// through, kept on the [`Rank`] so consecutive collectives in the same
/// membership epoch reuse one window instead of paying `win_create`'s
/// three barriers each time. Windows have no `win_free` in this subset,
/// so a stale-epoch window is simply dropped (its chunk-sized budget
/// charge persists until teardown, like every window's).
pub(crate) struct CollWin {
    pub(crate) win: Window,
    /// Exposed bytes (always `Tuning::coll_ring_chunk` at creation).
    cap: usize,
    /// Membership epoch the window was created in.
    epoch: u64,
}

/// Record which schedule actually executed.
fn tick(algo: CollectiveAlgo) {
    obs::inc(match algo {
        CollectiveAlgo::Naive => obs::Counter::CollAlgoNaive,
        CollectiveAlgo::Ring => obs::Counter::CollAlgoRing,
        CollectiveAlgo::RecursiveDoubling => obs::Counter::CollAlgoRecursiveDoubling,
        CollectiveAlgo::Binomial => obs::Counter::CollAlgoBinomial,
        CollectiveAlgo::Bruck => obs::Counter::CollAlgoBruck,
        CollectiveAlgo::Auto => unreachable!("Auto resolves before execution"),
    });
}

impl Rank {
    /// The configured algorithm override.
    fn forced_algo(&self) -> CollectiveAlgo {
        self.world.tuning.collective_algo
    }

    /// True when every member sits on one SCI ringlet, where the
    /// neighbour-ring schedules turn every hop into a single B-Link
    /// traversal.
    fn on_single_ringlet(&self) -> bool {
        matches!(self.world.fabric.topology(), Topology::Ringlet { .. })
    }

    /// Reject an out-of-range collective argument through the
    /// [`crate::ErrorMode`] path.
    fn check_arg(&self, what: &'static str, got: usize, limit: usize) -> Result<(), ScimpiError> {
        if got >= limit {
            return Err(self
                .world
                .escalate(ScimpiError::InvalidArg { what, got, limit }));
        }
        Ok(())
    }

    /// Make sure [`Rank::coll_win`] holds a usable window for the current
    /// membership epoch, creating it collectively when every member can
    /// afford the chunk buffer. Returns `false` (symmetrically, agreed
    /// via one control-plane gather) when any member's window budget or
    /// shared-segment pool is exhausted — callers fall back to a
    /// two-sided schedule.
    pub(crate) fn ensure_coll_win(&mut self) -> bool {
        let chunk = self.world.tuning.coll_ring_chunk;
        if let Some(cw) = &self.coll_win {
            if cw.epoch == self.epoch && cw.cap >= chunk {
                return true;
            }
            // Stale epoch or undersized: drop the handle and re-create.
            self.coll_win = None;
        }
        // Pre-check the budget: `alloc_mem` *escalates* budget exhaustion
        // (fatal under ErrorsAreFatal), but an unaffordable window should
        // mean "use the two-sided schedule", not "abort the run".
        let affordable = {
            let limit = self.world.tuning.window_budget_bytes;
            let used = self.world.window_bytes[self.world_rank()]
                .load(std::sync::atomic::Ordering::Relaxed);
            used.saturating_add(chunk) <= limit
        };
        let mem = if affordable {
            self.alloc_mem(chunk).ok()
        } else {
            None
        };
        let mine_ok = mem.is_some();
        let all_ok = self.collective_gather(mine_ok).into_iter().all(|ok| ok);
        if !all_ok {
            // Symmetric refusal: return the charge if we took one.
            if let Some(m) = mem {
                self.free_mem(m);
            }
            return false;
        }
        let mem = mem.expect("agreed affordable");
        match self.win_create(WinMemory::Alloc(mem)) {
            Ok(win) => {
                self.coll_win = Some(CollWin {
                    win,
                    cap: chunk,
                    epoch: self.epoch,
                });
                true
            }
            // Unreachable for Alloc memory in practice; be safe anyway.
            Err(_) => false,
        }
    }

    /// Broadcast `buf` from `root` to all ranks.
    ///
    /// `Auto` runs the one-sided pipelined ring for payloads of at least
    /// `Tuning::coll_ring_min` bytes on a single ringlet (chunks flow as
    /// PSCW window puts, see `docs/COLLECTIVES.md`), and the binomial
    /// tree otherwise. `buf` must have the same length on every rank.
    pub fn bcast(&mut self, root: usize, buf: &mut [u8]) -> Result<(), ScimpiError> {
        self.check_arg("bcast root", root, self.size())?;
        let n = self.size();
        if n == 1 {
            tick(CollectiveAlgo::Naive);
            return Ok(());
        }
        let algo = match self.forced_algo() {
            CollectiveAlgo::Auto => {
                if self.on_single_ringlet()
                    && n >= 4
                    && buf.len() >= self.world.tuning.coll_ring_min
                {
                    CollectiveAlgo::Ring
                } else {
                    CollectiveAlgo::Binomial
                }
            }
            forced => forced,
        };
        match algo {
            CollectiveAlgo::Ring if self.ensure_coll_win() => {
                tick(CollectiveAlgo::Ring);
                algos::ring_bcast_onesided(self, root, buf)
            }
            CollectiveAlgo::Naive => {
                tick(CollectiveAlgo::Naive);
                naive::bcast(self, root, buf)
            }
            // RecursiveDoubling/Bruck broadcasts alias to the binomial
            // tree (same log-depth, no better schedule exists here);
            // Ring lands here too when no collective window could be
            // allocated.
            _ => {
                tick(CollectiveAlgo::Binomial);
                naive::bcast(self, root, buf)
            }
        }
    }

    /// Reduce `values` element-wise onto `root`. Returns the result on
    /// `root`, `None` elsewhere. Every algorithm family aliases to the
    /// binomial fan-in (the schedule is already log-depth and any
    /// butterfly would move more data to produce one rooted result).
    pub fn reduce<T: Typed>(
        &mut self,
        root: usize,
        values: &[T],
        op: ReduceOp,
    ) -> Result<Option<Vec<T>>, ScimpiError> {
        self.check_arg("reduce root", root, self.size())?;
        let algo = match self.forced_algo() {
            CollectiveAlgo::Naive => CollectiveAlgo::Naive,
            _ => CollectiveAlgo::Binomial,
        };
        tick(algo);
        naive::reduce(self, root, values, op)
    }

    /// All-reduce `values` in place: every rank ends with the
    /// element-wise combination across all ranks.
    ///
    /// `Auto` runs recursive doubling for payloads up to
    /// `Tuning::coll_small_max` (latency-optimal: `ceil(log2 n)`
    /// exchange rounds) and the ring reduce-scatter + allgather above it
    /// on a single ringlet (bandwidth-optimal: every rank moves ~2×
    /// the buffer regardless of rank count).
    pub fn allreduce<T: Typed>(
        &mut self,
        values: &mut [T],
        op: ReduceOp,
    ) -> Result<(), ScimpiError> {
        let n = self.size();
        if n == 1 {
            tick(CollectiveAlgo::Naive);
            return Ok(());
        }
        let bytes = values.len() * T::SIZE;
        let algo = match self.forced_algo() {
            CollectiveAlgo::Auto => {
                if bytes > self.world.tuning.coll_small_max && self.on_single_ringlet() && n >= 4 {
                    CollectiveAlgo::Ring
                } else {
                    CollectiveAlgo::RecursiveDoubling
                }
            }
            forced => forced,
        };
        match algo {
            CollectiveAlgo::Naive => {
                tick(CollectiveAlgo::Naive);
                naive::allreduce(self, values, op)
            }
            CollectiveAlgo::Binomial => {
                tick(CollectiveAlgo::Binomial);
                naive::allreduce(self, values, op)
            }
            CollectiveAlgo::Ring => {
                tick(CollectiveAlgo::Ring);
                algos::ring_allreduce(self, values, op)
            }
            // Bruck all-reduce aliases to recursive doubling (same
            // butterfly for symmetric counts).
            CollectiveAlgo::RecursiveDoubling | CollectiveAlgo::Bruck => {
                tick(CollectiveAlgo::RecursiveDoubling);
                algos::recdbl_allreduce(self, values, op)
            }
            CollectiveAlgo::Auto => unreachable!("resolved above"),
        }
    }

    /// Inclusive prefix combination in place (`MPI_Scan`): rank `k` ends
    /// with the combination of the values of ranks `0..=k`. `Auto` runs
    /// the Hillis–Steele doubling schedule (`ceil(log2 n)` rounds)
    /// beyond two ranks; `Naive`/`Ring` force the linear hop chain.
    pub fn scan<T: Typed>(&mut self, values: &mut [T], op: ReduceOp) -> Result<(), ScimpiError> {
        let n = self.size();
        if n == 1 {
            tick(CollectiveAlgo::Naive);
            return Ok(());
        }
        let algo = match self.forced_algo() {
            CollectiveAlgo::Auto => {
                if n > 2 {
                    CollectiveAlgo::RecursiveDoubling
                } else {
                    CollectiveAlgo::Naive
                }
            }
            forced => forced,
        };
        match algo {
            // A ring scan is the chain: both walk rank order.
            CollectiveAlgo::Naive | CollectiveAlgo::Ring => {
                tick(CollectiveAlgo::Naive);
                naive::scan(self, values, op)
            }
            _ => {
                tick(CollectiveAlgo::RecursiveDoubling);
                algos::hillis_steele_scan(self, values, op)
            }
        }
    }

    /// Gather with variable sizes (`MPI_Gatherv`-style): `root` receives
    /// every rank's `mine` (`Some(blocks)` indexed by rank), all other
    /// ranks get `None`. `Auto` aggregates through the binomial tree
    /// beyond two ranks; `Naive`/`Ring` force the linear schedule.
    pub fn gatherv(
        &mut self,
        root: usize,
        mine: &[u8],
    ) -> Result<Option<Vec<Vec<u8>>>, ScimpiError> {
        self.check_arg("gather root", root, self.size())?;
        let algo = self.rooted_tree_algo();
        match algo {
            CollectiveAlgo::Naive => {
                tick(CollectiveAlgo::Naive);
                naive::gatherv(self, root, mine)
            }
            _ => {
                tick(CollectiveAlgo::Binomial);
                algos::binomial_gatherv(self, root, mine)
            }
        }
    }

    /// Scatter with variable sizes (`MPI_Scatterv`-style): `root` passes
    /// `Some(parts)` (one block per rank, indexed by destination), every
    /// other rank passes `None`; each rank returns its own block. `Auto`
    /// distributes through the binomial tree beyond two ranks.
    pub fn scatterv(
        &mut self,
        root: usize,
        parts: Option<&[Vec<u8>]>,
    ) -> Result<Vec<u8>, ScimpiError> {
        self.check_arg("scatter root", root, self.size())?;
        let n = self.size();
        if self.rank() == root {
            let got = parts.map_or(0, <[Vec<u8>]>::len);
            if got != n {
                return Err(self.world.escalate(ScimpiError::InvalidArg {
                    what: "scatterv parts",
                    got,
                    limit: n,
                }));
            }
        }
        if n == 1 {
            tick(CollectiveAlgo::Naive);
            return Ok(parts.expect("validated above")[0].clone());
        }
        match self.rooted_tree_algo() {
            CollectiveAlgo::Naive => {
                tick(CollectiveAlgo::Naive);
                naive::scatterv(self, root, parts)
            }
            _ => {
                tick(CollectiveAlgo::Binomial);
                algos::binomial_scatterv(self, root, parts)
            }
        }
    }

    /// Shared selection for the rooted tree collectives
    /// (gatherv/scatterv): linear at ≤ 2 ranks or when forced
    /// `Naive`/`Ring` (a rooted ring is the linear chain), binomial
    /// otherwise.
    fn rooted_tree_algo(&self) -> CollectiveAlgo {
        match self.forced_algo() {
            CollectiveAlgo::Naive | CollectiveAlgo::Ring => CollectiveAlgo::Naive,
            CollectiveAlgo::Auto if self.size() <= 2 => CollectiveAlgo::Naive,
            _ => CollectiveAlgo::Binomial,
        }
    }

    /// All-gather: every rank contributes `mine` (sizes may differ) and
    /// receives every rank's contribution, indexed by rank.
    ///
    /// `Auto` agrees on the largest contribution with one control-plane
    /// gather (contributions are ragged, so no rank can select
    /// symmetrically from local state alone), then runs Bruck up to
    /// `Tuning::coll_small_max`, the neighbour ring above it on a single
    /// ringlet, and recursive doubling otherwise.
    pub fn allgather(&mut self, mine: &[u8]) -> Result<Vec<Vec<u8>>, ScimpiError> {
        let n = self.size();
        if n == 1 {
            tick(CollectiveAlgo::Naive);
            return Ok(vec![mine.to_vec()]);
        }
        let mut algo = match self.forced_algo() {
            CollectiveAlgo::Auto => {
                let max = self
                    .collective_gather(mine.len())
                    .into_iter()
                    .max()
                    .unwrap_or(0);
                if max <= self.world.tuning.coll_small_max {
                    CollectiveAlgo::Bruck
                } else if self.on_single_ringlet() && n >= 4 {
                    CollectiveAlgo::Ring
                } else {
                    CollectiveAlgo::RecursiveDoubling
                }
            }
            forced => forced,
        };
        // The doubling butterfly needs a power of two; Bruck is its
        // any-count generalisation.
        if algo == CollectiveAlgo::RecursiveDoubling && !n.is_power_of_two() {
            algo = CollectiveAlgo::Bruck;
        }
        match algo {
            CollectiveAlgo::Naive | CollectiveAlgo::Binomial => {
                // The legacy gather-to-0 + rebroadcast composition; its
                // internal tree is already binomial.
                tick(CollectiveAlgo::Naive);
                naive::allgather(self, mine)
            }
            CollectiveAlgo::Ring => {
                tick(CollectiveAlgo::Ring);
                algos::ring_allgather(self, mine)
            }
            CollectiveAlgo::RecursiveDoubling => {
                tick(CollectiveAlgo::RecursiveDoubling);
                algos::recdbl_allgather(self, mine)
            }
            CollectiveAlgo::Bruck => {
                tick(CollectiveAlgo::Bruck);
                algos::bruck_allgather(self, mine)
            }
            CollectiveAlgo::Auto => unreachable!("resolved above"),
        }
    }

    /// Exchange byte blocks with every rank (`MPI_Alltoall`): block `d`
    /// of `sendblocks` goes to rank `d`; block `s` of the result came
    /// from rank `s`.
    ///
    /// Like `MPI_Alltoall`, every rank is expected to pass the same
    /// block size (ragged exchanges belong to [`Rank::alltoallv`]). The
    /// schedule decision rides on that contract: `Auto` runs the Bruck
    /// schedule (`ceil(log2 n)` rounds) when the local blocks are
    /// equal-sized and at most `Tuning::coll_bruck_max` bytes, and the
    /// pairwise exchange otherwise — a purely local decision, so the
    /// adaptive path costs nothing over a forced pairwise run. Forcing
    /// `Bruck` drops the size cap. Locally ragged blocks always fall
    /// back to pairwise (which tolerates raggedness end to end, as long
    /// as every rank's blocks are ragged the same way).
    pub fn alltoall(&mut self, sendblocks: &[Vec<u8>]) -> Result<Vec<Vec<u8>>, ScimpiError> {
        let n = self.size();
        if sendblocks.len() != n {
            return Err(self.world.escalate(ScimpiError::InvalidArg {
                what: "alltoall blocks",
                got: sendblocks.len(),
                limit: n,
            }));
        }
        if n == 1 {
            tick(CollectiveAlgo::Naive);
            return Ok(vec![sendblocks[0].clone()]);
        }
        let bruck = match self.forced_algo() {
            f @ (CollectiveAlgo::Auto | CollectiveAlgo::Bruck) => {
                let b0 = sendblocks[0].len();
                let equal = sendblocks.iter().all(|b| b.len() == b0);
                equal
                    && (f == CollectiveAlgo::Bruck
                        || (b0 <= self.world.tuning.coll_bruck_max && n >= 4))
            }
            _ => false,
        };
        if bruck {
            tick(CollectiveAlgo::Bruck);
            algos::bruck_alltoall(self, sendblocks)
        } else {
            tick(CollectiveAlgo::Naive);
            algos::alltoall_pairwise(self, sendblocks)
        }
    }

    /// Flat-buffer personalized exchange (`MPI_Alltoallv`): rank `d`
    /// receives `counts[d]` bytes starting at `displs[d]` of `sendbuf`.
    /// Returns `(recvbuf, recvcounts, recvdispls)` with the received
    /// bytes concatenated in source-rank order.
    ///
    /// Always runs the nonblocking pairwise schedule (counts exchange,
    /// pre-posted `irecv`s, blocking sends) — Bruck-style combining
    /// cannot beat it for ragged payloads, so the algorithm override is
    /// intentionally ignored here.
    pub fn alltoallv(
        &mut self,
        sendbuf: &[u8],
        counts: &[usize],
        displs: &[usize],
    ) -> Result<AlltoallvParts, ScimpiError> {
        let n = self.size();
        if counts.len() != n || displs.len() != n {
            return Err(self.world.escalate(ScimpiError::InvalidArg {
                what: "alltoallv counts/displs",
                got: counts.len().min(displs.len()),
                limit: n,
            }));
        }
        for d in 0..n {
            let end = displs[d].saturating_add(counts[d]);
            if end > sendbuf.len() {
                return Err(self.world.escalate(ScimpiError::InvalidArg {
                    what: "alltoallv extent",
                    got: end,
                    limit: sendbuf.len(),
                }));
            }
        }
        tick(CollectiveAlgo::Naive);
        if n == 1 {
            let mine = sendbuf[displs[0]..displs[0] + counts[0]].to_vec();
            return Ok((mine, vec![counts[0]], vec![0]));
        }
        algos::alltoallv_requests(self, sendbuf, counts, displs)
    }

    /// Reduce onto `root` over `f64` slices.
    #[deprecated(note = "use the element-generic `Rank::reduce` instead")]
    pub fn reduce_f64(
        &mut self,
        root: usize,
        values: &[f64],
        op: ReduceOp,
    ) -> Result<Option<Vec<f64>>, ScimpiError> {
        self.reduce(root, values, op)
    }

    /// All-reduce over `f64` slices, returning a fresh vector.
    #[deprecated(note = "use the element-generic, in-place `Rank::allreduce` instead")]
    pub fn allreduce_f64(&mut self, values: &[f64], op: ReduceOp) -> Result<Vec<f64>, ScimpiError> {
        let mut v = values.to_vec();
        self.allreduce(&mut v, op)?;
        Ok(v)
    }

    /// Inclusive prefix sum over `f64` slices, returning a fresh vector.
    #[deprecated(note = "use the element-generic, in-place `Rank::scan` with `ReduceOp::Sum`")]
    pub fn scan_sum_f64(&mut self, values: &[f64]) -> Result<Vec<f64>, ScimpiError> {
        let mut v = values.to_vec();
        self.scan(&mut v, ReduceOp::Sum)?;
        Ok(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runtime::{run, ClusterSpec};
    use crate::ErrorMode;

    #[test]
    fn bcast_from_every_root() {
        for root in 0..5 {
            let out = run(ClusterSpec::ringlet(5), move |r| {
                let mut buf = if r.rank() == root {
                    vec![0xAB; 1000]
                } else {
                    vec![0; 1000]
                };
                r.bcast(root, &mut buf).unwrap();
                buf
            });
            for v in out {
                assert!(v.iter().all(|&b| b == 0xAB), "root {root}");
            }
        }
    }

    #[test]
    fn reduce_sums_across_ranks() {
        let out = run(ClusterSpec::ringlet(6), |r| {
            let values = vec![r.rank() as f64, 1.0];
            r.reduce(0, &values, ReduceOp::Sum).unwrap()
        });
        assert_eq!(out[0], Some(vec![15.0, 6.0]));
        assert!(out[1..].iter().all(Option::is_none));
    }

    #[test]
    fn reduce_is_element_generic() {
        let out = run(ClusterSpec::ringlet(5), |r| {
            let values = vec![r.rank() as u32, 100 + r.rank() as u32];
            r.reduce(2, &values, ReduceOp::Max).unwrap()
        });
        assert_eq!(out[2], Some(vec![4, 104]));
        assert!(out[0].is_none() && out[1].is_none());
    }

    #[test]
    fn allreduce_max_and_min() {
        let out = run(ClusterSpec::ringlet(4), |r| {
            let mut mx = [r.rank() as f64 * 2.0];
            let mut mn = mx;
            r.allreduce(&mut mx, ReduceOp::Max).unwrap();
            r.allreduce(&mut mn, ReduceOp::Min).unwrap();
            (mx[0], mn[0])
        });
        assert!(out.iter().all(|&(mx, mn)| mx == 6.0 && mn == 0.0));
    }

    #[test]
    fn allreduce_sums_integers_in_place() {
        let out = run(ClusterSpec::ringlet(6), |r| {
            let mut v: Vec<i64> = vec![r.rank() as i64, -1];
            r.allreduce(&mut v, ReduceOp::Sum).unwrap();
            v
        });
        assert!(out.iter().all(|v| v == &[15, -6]));
    }

    #[test]
    fn gatherv_collects_ragged_data() {
        let out = run(ClusterSpec::ringlet(4), |r| {
            let mine = vec![r.rank() as u8; r.rank()]; // rank k sends k bytes
            r.gatherv(0, &mine).unwrap()
        });
        let gathered = out[0].as_ref().unwrap();
        for (k, v) in gathered.iter().enumerate() {
            assert_eq!(v.len(), k);
            assert!(v.iter().all(|&b| b == k as u8));
        }
    }

    #[test]
    fn scatterv_distributes_ragged_parts() {
        for root in [0usize, 2] {
            let out = run(ClusterSpec::ringlet(4), move |r| {
                let parts: Option<Vec<Vec<u8>>> = (r.rank() == root)
                    .then(|| (0..r.size()).map(|d| vec![d as u8; d + 1]).collect());
                r.scatterv(root, parts.as_deref()).unwrap()
            });
            for (k, v) in out.iter().enumerate() {
                assert_eq!(v, &vec![k as u8; k + 1], "root {root} rank {k}");
            }
        }
    }

    #[test]
    fn alltoall_exchanges_blocks() {
        let out = run(ClusterSpec::ringlet(3), |r| {
            let blocks: Vec<Vec<u8>> = (0..r.size())
                .map(|d| vec![(r.rank() * 10 + d) as u8; 64])
                .collect();
            r.alltoall(&blocks).unwrap()
        });
        for (me, blocks) in out.iter().enumerate() {
            for (src, b) in blocks.iter().enumerate() {
                assert_eq!(b.len(), 64);
                assert!(b.iter().all(|&x| x == (src * 10 + me) as u8));
            }
        }
    }

    #[test]
    fn alltoallv_exchanges_flat_buffers() {
        let out = run(ClusterSpec::ringlet(4), |r| {
            // Rank s sends s+d+1 bytes of value s*10+d to rank d.
            let mut sendbuf = Vec::new();
            let mut counts = Vec::new();
            let mut displs = Vec::new();
            for d in 0..r.size() {
                displs.push(sendbuf.len());
                counts.push(r.rank() + d + 1);
                sendbuf.extend(vec![(r.rank() * 10 + d) as u8; r.rank() + d + 1]);
            }
            r.alltoallv(&sendbuf, &counts, &displs).unwrap()
        });
        for (me, (flat, rcounts, rdispls)) in out.iter().enumerate() {
            for src in 0..4 {
                assert_eq!(rcounts[src], src + me + 1, "rank {me} from {src}");
                let sl = &flat[rdispls[src]..rdispls[src] + rcounts[src]];
                assert!(sl.iter().all(|&b| b == (src * 10 + me) as u8));
            }
        }
    }

    #[test]
    fn allgather_collects_everything_everywhere() {
        let out = run(ClusterSpec::ringlet(4), |r| {
            let mine = vec![r.rank() as u8 + 1; r.rank() + 1]; // ragged
            r.allgather(&mine).unwrap()
        });
        for per_rank in out {
            assert_eq!(per_rank.len(), 4);
            for (k, v) in per_rank.iter().enumerate() {
                assert_eq!(v.len(), k + 1);
                assert!(v.iter().all(|&b| b == k as u8 + 1));
            }
        }
    }

    #[test]
    fn scan_gives_prefix_sums() {
        let out = run(ClusterSpec::ringlet(5), |r| {
            let mut v = [r.rank() as f64, 1.0];
            r.scan(&mut v, ReduceOp::Sum).unwrap();
            v
        });
        for (k, v) in out.iter().enumerate() {
            let expect0: f64 = (0..=k).map(|i| i as f64).sum();
            assert_eq!(v[0], expect0, "rank {k}");
            assert_eq!(v[1], (k + 1) as f64);
        }
    }

    #[test]
    fn single_rank_collectives_are_identity() {
        let out = run(ClusterSpec::ringlet(1), |r| {
            let mut b = vec![9u8; 10];
            r.bcast(0, &mut b).unwrap();
            let red = r.reduce(0, &[5.0], ReduceOp::Sum).unwrap().unwrap();
            let mut all = [3.0];
            r.allreduce(&mut all, ReduceOp::Max).unwrap();
            let scat = r.scatterv(0, Some(&[vec![7u8]])).unwrap();
            let (v, vc, vd) = r.alltoallv(&[1, 2], &[2], &[0]).unwrap();
            (b, red, all[0], scat, (v, vc, vd))
        });
        assert_eq!(out[0].0, vec![9u8; 10]);
        assert_eq!(out[0].1, vec![5.0]);
        assert_eq!(out[0].2, 3.0);
        assert_eq!(out[0].3, vec![7u8]);
        assert_eq!(out[0].4, (vec![1, 2], vec![2], vec![0]));
    }

    #[test]
    fn deprecated_f64_shims_still_work() {
        #[allow(deprecated)]
        let out = run(ClusterSpec::ringlet(3), |r| {
            let s = r.allreduce_f64(&[r.rank() as f64], ReduceOp::Sum).unwrap();
            let p = r.scan_sum_f64(&[1.0]).unwrap();
            let m = r.reduce_f64(0, &[r.rank() as f64], ReduceOp::Max).unwrap();
            (s[0], p[0], m.map(|v| v[0]))
        });
        assert!(out.iter().all(|&(s, _, _)| s == 3.0));
        assert_eq!(out[1].1, 2.0);
        assert_eq!(out[0].2, Some(2.0));
        assert_eq!(out[2].2, None);
    }

    #[test]
    fn out_of_range_root_is_invalid_arg() {
        let spec = ClusterSpec {
            errors: ErrorMode::ErrorsReturn,
            ..ClusterSpec::ringlet(3)
        };
        let out = run(spec, |r| {
            let bcast = r.bcast(7, &mut [0u8; 4]).unwrap_err();
            let reduce = r.reduce(3, &[1.0], ReduceOp::Sum).unwrap_err();
            let gather = r.gatherv(9, &[]).unwrap_err();
            let scatter = r.scatterv(5, None).unwrap_err();
            let blocks = r.alltoall(&[Vec::new()]).unwrap_err();
            let a2av = r.alltoallv(&[], &[0; 3], &[0; 2]).unwrap_err();
            [bcast, reduce, gather, scatter, blocks, a2av]
        });
        for errs in out {
            for (i, e) in errs.iter().enumerate() {
                assert!(
                    matches!(e, ScimpiError::InvalidArg { .. }),
                    "site {i}: {e:?}"
                );
            }
        }
    }

    #[test]
    fn scatterv_rejects_wrong_part_count() {
        let spec = ClusterSpec {
            errors: ErrorMode::ErrorsReturn,
            ..ClusterSpec::ringlet(2)
        };
        let out = run(spec, |r| {
            if r.rank() == 0 {
                // Root with too few parts: rejected locally before any
                // communication, so rank 1 must not block on it.
                Some(r.scatterv(0, Some(&[vec![1u8]][..])).unwrap_err())
            } else {
                None
            }
        });
        assert!(matches!(
            out[0],
            Some(ScimpiError::InvalidArg {
                what: "scatterv parts",
                got: 1,
                limit: 2
            })
        ));
    }

    #[test]
    fn bcast_time_scales_logarithmically() {
        let time_for = |n: usize| {
            let out = run(ClusterSpec::ringlet(n), |r| {
                let mut b = vec![1u8; 4096];
                r.bcast(0, &mut b).unwrap();
                r.barrier();
                r.now()
            });
            out[0]
        };
        let t2 = time_for(2);
        let t8 = time_for(8);
        // 8 ranks = 3 tree levels; must be well under 7x the 2-rank time.
        assert!(t8.as_ps() < 5 * t2.as_ps(), "t2={t2:?} t8={t8:?}");
    }
}
