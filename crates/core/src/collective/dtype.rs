//! Datatype-aware collective variants.
//!
//! These move non-contiguous layouts through the pack-path selector
//! ([`crate::Tuning::select_path`]) on *every tree edge* instead of
//! forcing the caller to pack into a scratch buffer first: each edge is
//! a [`Rank::send_typed`]/[`Rank::recv_typed`] (or typed
//! [`Rank::sendrecv`]) conversation, so `direct_pack_ff` streams the
//! layout straight into the remote ring buffer whenever the selector
//! says so, and only the genuinely pack-hostile layouts pay a staging
//! copy. The [`obs::Counter::CollPackedBytes`] counter records exactly
//! the bytes that went through the staged path inside a typed
//! collective — the `coll_sweep` bench asserts it stays at zero for
//! pack-friendly layouts, which is the "never loses to pack+send" bar.

use super::{coll_span, ReduceOp, Typed, COLL_TAG};
use crate::error::ScimpiError;
use crate::mailbox::{Source, TagSel};
use crate::p2p::RecvBuf;
use crate::runtime::Rank;
use crate::tuning::PackPath;
use crate::SendData;
use mpi_datatype::{ff, Committed};

/// Account a typed collective edge: mirror the selector's verdict and
/// record staged-path bytes (the selector inside `send_typed` ticks the
/// `path_selected_*` counters itself; this one only answers "did a typed
/// collective fall back to packing?").
fn note_edge(r: &Rank, c: &Committed, count: usize) {
    let total = c.size() * count;
    if r.world.tuning.select_path(c, total, false) == PackPath::Staged {
        obs::add(obs::Counter::CollPackedBytes, total as u64);
    }
}

/// The byte range `[lo, hi)` of `count` instances of `c` with
/// displacement 0 at `origin`, or an `InvalidArg` when it falls outside
/// `buf_len`.
fn check_span(
    r: &Rank,
    c: &Committed,
    count: usize,
    origin: usize,
    buf_len: usize,
) -> Result<(), ScimpiError> {
    let lo = origin as i64 + c.datatype().lb();
    let hi = lo + (count * c.extent()) as i64;
    if lo < 0 || hi > buf_len as i64 {
        return Err(r.world.escalate(ScimpiError::InvalidArg {
            what: "typed collective buffer extent",
            got: hi.max(0) as usize,
            limit: buf_len,
        }));
    }
    Ok(())
}

impl Rank {
    /// Broadcast `count` instances of `c` (displacement 0 at byte
    /// `origin` of `buf`) from `root`, binomial tree with a typed edge
    /// per hop. Every rank must pass the same `c` and `count`; `buf` and
    /// `origin` are per-rank.
    pub fn bcast_typed(
        &mut self,
        root: usize,
        c: &Committed,
        count: usize,
        buf: &mut [u8],
        origin: usize,
    ) -> Result<(), ScimpiError> {
        self.check_arg("bcast root", root, self.size())?;
        check_span(self, c, count, origin, buf.len())?;
        let _reliable = crate::p2p::reliable_section();
        let size = self.size();
        if size == 1 || count == 0 {
            return Ok(());
        }
        let start = self.clock.now();
        let vrank = (self.rank() + size - root) % size;
        let mut mask = 1usize;
        while mask < size {
            if vrank & mask != 0 {
                let src = (vrank - mask + root) % size;
                self.recv_typed(
                    Source::Rank(src),
                    TagSel::Value(COLL_TAG + 10),
                    c,
                    count,
                    buf,
                    origin,
                )?;
                break;
            }
            mask <<= 1;
        }
        mask >>= 1;
        while mask > 0 {
            if vrank + mask < size {
                let dst = (vrank + mask + root) % size;
                let copy = buf.to_vec();
                note_edge(self, c, count);
                self.send_typed(dst, COLL_TAG + 10, c, count, &copy, origin)?;
            }
            mask >>= 1;
        }
        coll_span(self, "coll.bcast", start, c.size() * count);
        Ok(())
    }

    /// All-reduce `count` instances of `c` in place, combining the
    /// `T`-typed elements the layout addresses (each basic block of `c`
    /// must be a whole number of `T`s). Binomial reduce onto rank 0 with
    /// typed edges, then a typed rebroadcast — no caller-side packing
    /// anywhere.
    pub fn allreduce_typed<T: Typed>(
        &mut self,
        c: &Committed,
        count: usize,
        buf: &mut [u8],
        origin: usize,
        op: ReduceOp,
    ) -> Result<(), ScimpiError> {
        check_span(self, c, count, origin, buf.len())?;
        let _reliable = crate::p2p::reliable_section();
        let size = self.size();
        if size == 1 || count == 0 {
            return Ok(());
        }
        let start = self.clock.now();
        let vrank = self.rank(); // reduction root is rank 0
        let mut mask = 1usize;
        while mask < size {
            if vrank & mask != 0 {
                note_edge(self, c, count);
                self.send_typed(vrank - mask, COLL_TAG + 10, c, count, buf, origin)?;
                break;
            }
            if vrank + mask < size {
                let src = vrank + mask;
                let mut scratch = vec![0u8; buf.len()];
                self.recv_typed(
                    Source::Rank(src),
                    TagSel::Value(COLL_TAG + 10),
                    c,
                    count,
                    &mut scratch,
                    origin,
                )?;
                ff::for_each_block(c, count, 0, usize::MAX, |disp, len| {
                    let at = (origin as i64 + disp) as usize;
                    debug_assert_eq!(len % T::SIZE, 0, "datatype blocks must be whole elements");
                    let mut o = 0usize;
                    while o < len {
                        let a = T::read_le(&buf[at + o..at + o + T::SIZE]);
                        let b = T::read_le(&scratch[at + o..at + o + T::SIZE]);
                        T::combine(op, a, b).write_le(&mut buf[at + o..at + o + T::SIZE]);
                        o += T::SIZE;
                    }
                    core::ops::ControlFlow::Continue(())
                });
            }
            mask <<= 1;
        }
        self.bcast_typed(0, c, count, buf, origin)?;
        coll_span(self, "coll.allreduce", start, c.size() * count);
        Ok(())
    }

    /// All-gather with per-rank instance counts and a non-contiguous
    /// layout: every rank contributes `count` instances of `c` and
    /// receives every rank's contribution as `(count_i, extent image)`
    /// pairs, indexed by rank (each image has displacement 0 at byte
    /// `(-lb).max(0)` and is directly addressable through `c`).
    ///
    /// Counts are agreed with one control-plane gather, then the images
    /// circulate on the neighbour ring with a typed edge per hop —
    /// `n-1` hops each moving `c.size() · count_fwd` dense bytes.
    pub fn allgatherv_typed(
        &mut self,
        c: &Committed,
        count: usize,
        buf: &[u8],
        origin: usize,
    ) -> Result<Vec<(usize, Vec<u8>)>, ScimpiError> {
        check_span(self, c, count, origin, buf.len())?;
        let _reliable = crate::p2p::reliable_section();
        let n = self.size();
        let me = self.rank();
        let start = self.clock.now();
        let counts = self.collective_gather(count);
        let ext = c.extent();
        let img_origin = (-c.datatype().lb()).max(0) as usize;
        // My own extent image, copied out of `buf`.
        let lo = (origin as i64 + c.datatype().lb()) as usize;
        let mut images: Vec<Option<Vec<u8>>> = (0..n).map(|_| None).collect();
        images[me] = Some(buf[lo..lo + count * ext].to_vec());
        if n == 1 {
            return Ok(vec![(count, images[0].take().expect("own image"))]);
        }
        let succ = (me + 1) % n;
        let pred = (me + n - 1) % n;
        for t in 0..n - 1 {
            let fwd = (me + n - t) % n;
            let rcv = (me + n - t - 1) % n;
            let send_img = images[fwd].clone().expect("forwarded image present");
            let mut rbuf = vec![0u8; counts[rcv] * ext];
            note_edge(self, c, counts[fwd]);
            self.sendrecv(
                succ,
                COLL_TAG + 11,
                SendData::Typed {
                    c,
                    count: counts[fwd],
                    buf: &send_img,
                    origin: img_origin,
                },
                Source::Rank(pred),
                TagSel::Value(COLL_TAG + 11),
                RecvBuf::Typed {
                    c,
                    count: counts[rcv],
                    buf: &mut rbuf,
                    origin: img_origin,
                },
            )?;
            images[rcv] = Some(rbuf);
        }
        let total: usize = counts.iter().map(|k| k * c.size()).sum();
        coll_span(self, "coll.allgatherv", start, total);
        Ok(counts
            .into_iter()
            .zip(images)
            .map(|(k, img)| (k, img.expect("ring delivered every image")))
            .collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runtime::{run, ClusterSpec};
    use mpi_datatype::Datatype;

    /// A vector layout: `blocks` blocks of `blocklen` doubles, stride
    /// `stride` doubles.
    fn vec_dt(blocks: usize, blocklen: usize, stride: isize) -> Committed {
        Committed::commit(&Datatype::vector(
            blocks,
            blocklen,
            stride,
            &Datatype::double(),
        ))
    }

    #[test]
    fn bcast_typed_fills_strided_columns() {
        let out = run(ClusterSpec::ringlet(4), |r| {
            let c = vec_dt(8, 2, 4); // 8 blocks of 2 doubles, stride 4
            let mut buf = vec![0u8; c.extent()];
            if r.rank() == 1 {
                for i in 0..8 {
                    for j in 0..2 {
                        let v = (i * 2 + j) as f64;
                        buf[(i * 4 + j) * 8..][..8].copy_from_slice(&v.to_le_bytes());
                    }
                }
            }
            r.bcast_typed(1, &c, 1, &mut buf, 0).unwrap();
            buf
        });
        for (rank, buf) in out.iter().enumerate() {
            for i in 0..8 {
                for j in 0..2 {
                    let at = (i * 4 + j) * 8;
                    let v = f64::from_le_bytes(buf[at..at + 8].try_into().unwrap());
                    assert_eq!(v, (i * 2 + j) as f64, "rank {rank} block {i} elem {j}");
                }
            }
            // The gaps stay untouched.
            let gap = f64::from_le_bytes(out[0][2 * 8..3 * 8].try_into().unwrap());
            assert_eq!(gap, 0.0);
        }
    }

    #[test]
    fn allreduce_typed_combines_layout_elements() {
        let out = run(ClusterSpec::ringlet(5), |r| {
            let c = vec_dt(4, 1, 3); // 4 single-double blocks, stride 3
            let mut buf = vec![0u8; c.extent()];
            for i in 0..4 {
                let v = (r.rank() * 100 + i) as f64;
                buf[i * 3 * 8..][..8].copy_from_slice(&v.to_le_bytes());
            }
            r.allreduce_typed::<f64>(&c, 1, &mut buf, 0, ReduceOp::Max)
                .unwrap();
            buf
        });
        for buf in &out {
            for i in 0..4 {
                let v = f64::from_le_bytes(buf[i * 3 * 8..][..8].try_into().unwrap());
                assert_eq!(v, (400 + i) as f64);
            }
        }
    }

    #[test]
    fn allgatherv_typed_circulates_ragged_counts() {
        let out = run(ClusterSpec::ringlet(4), |r| {
            let c = vec_dt(2, 1, 2); // 2 single-double blocks, stride 2
            let count = r.rank() + 1; // ragged instance counts
            let ext = c.extent();
            let mut buf = vec![0u8; ext * count];
            for i in 0..count {
                for j in 0..2 {
                    let v = (r.rank() * 10 + i * 2 + j) as f64;
                    buf[i * ext + j * 2 * 8..][..8].copy_from_slice(&v.to_le_bytes());
                }
            }
            r.allgatherv_typed(&c, count, &buf, 0).unwrap()
        });
        let ext = 3 * 8; // extent of vec_dt(2, 1, 2): (1 * 2 + 1) doubles
        for (me, per_rank) in out.iter().enumerate() {
            assert_eq!(per_rank.len(), 4);
            for (src, (k, img)) in per_rank.iter().enumerate() {
                assert_eq!(*k, src + 1, "rank {me} from {src}");
                for i in 0..*k {
                    for j in 0..2 {
                        let v =
                            f64::from_le_bytes(img[i * ext + j * 2 * 8..][..8].try_into().unwrap());
                        let want = (src * 10 + i * 2 + j) as f64;
                        assert_eq!(v, want, "rank {me} from {src} inst {i} blk {j}");
                    }
                }
            }
        }
    }

    #[test]
    fn typed_span_validation_is_an_invalid_arg() {
        let spec = ClusterSpec {
            errors: crate::ErrorMode::ErrorsReturn,
            ..ClusterSpec::ringlet(2)
        };
        let out = run(spec, |r| {
            let c = vec_dt(4, 1, 2);
            let mut tiny = vec![0u8; 8]; // far smaller than one extent
            r.bcast_typed(0, &c, 1, &mut tiny, 0).unwrap_err()
        });
        assert!(matches!(out[0], ScimpiError::InvalidArg { .. }));
    }
}
