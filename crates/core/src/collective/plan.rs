//! Rank-symmetric communication plans for the collective engine.
//!
//! Every schedule here is a pure function of `(rank, size)` — no clocks,
//! no transport — so each member of a collective derives the *same* plan
//! independently and the wire conversation is symmetric by construction.
//! The executors in [`super::algos`] walk these plans over the actual
//! primitives (sendrecv, nonblocking requests, one-sided windows).

/// Lowest set bit of `v` (`v` must be non-zero).
pub(crate) fn lowest_set_bit(v: usize) -> usize {
    v & v.wrapping_neg()
}

/// Largest power of two at or below `n` (`n` must be non-zero).
pub(crate) fn pow2_floor(n: usize) -> usize {
    let mut p = 1usize;
    while p * 2 <= n {
        p *= 2;
    }
    p
}

/// Parent of `vrank` in the binomial tree rooted at vrank 0: the vrank
/// with the lowest set bit cleared. `vrank` must be non-zero.
pub(crate) fn binomial_parent(vrank: usize) -> usize {
    vrank & (vrank - 1)
}

/// Children of `vrank` in the binomial tree over `n` vranks, ascending:
/// `vrank + m` for each power of two `m` below `vrank`'s lowest set bit
/// (unbounded for the root) that stays inside the tree. Each child is
/// returned with the size of the subtree hanging off it.
pub(crate) fn binomial_children(vrank: usize, n: usize) -> Vec<(usize, usize)> {
    let cap = if vrank == 0 { n } else { lowest_set_bit(vrank) };
    let mut out = Vec::new();
    let mut m = 1usize;
    while m < cap && vrank + m < n {
        out.push((vrank + m, subtree_span(vrank + m, n)));
        m <<= 1;
    }
    out
}

/// Number of vranks in the subtree rooted at `vrank` (itself included).
pub(crate) fn subtree_span(vrank: usize, n: usize) -> usize {
    let reach = if vrank == 0 { n } else { lowest_set_bit(vrank) };
    reach.min(n - vrank)
}

/// A rank's role in the non-power-of-two recursive-doubling fold
/// (MPICH's scheme): with `p2 = pow2_floor(n)` and `rem = n - p2`, the
/// first `2 * rem` ranks pair up — evens fold their contribution into
/// the odd partner and sit out the core exchange — leaving exactly `p2`
/// core participants with dense `newrank`s.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub(crate) enum RecDblRole {
    /// Even rank below `2 * rem`: sends its data to `partner`
    /// (`rank + 1`), then receives the finished result back from it.
    Fold {
        /// The odd partner absorbing this rank's contribution.
        partner: usize,
    },
    /// Core participant of the power-of-two exchange.
    Core {
        /// Dense rank in `0..p2` used for partner arithmetic.
        newrank: usize,
        /// `Some(rank - 1)` for odd ranks below `2 * rem`: the folded
        /// partner the result is returned to afterwards.
        folded: Option<usize>,
    },
}

/// This rank's role in the recursive-doubling fold over `n` ranks.
pub(crate) fn recdbl_role(rank: usize, n: usize) -> RecDblRole {
    let rem = n - pow2_floor(n);
    if rank < 2 * rem {
        if rank.is_multiple_of(2) {
            RecDblRole::Fold { partner: rank + 1 }
        } else {
            RecDblRole::Core {
                newrank: rank / 2,
                folded: Some(rank - 1),
            }
        }
    } else {
        RecDblRole::Core {
            newrank: rank - rem,
            folded: None,
        }
    }
}

/// Inverse of the core mapping: the real rank holding dense `newrank`.
pub(crate) fn recdbl_rank_of(newrank: usize, n: usize) -> usize {
    let rem = n - pow2_floor(n);
    if newrank < rem {
        2 * newrank + 1
    } else {
        newrank + rem
    }
}

/// Bruck round distances for `n` ranks: the powers of two below `n`.
pub(crate) fn bruck_rounds(n: usize) -> Vec<usize> {
    let mut out = Vec::new();
    let mut d = 1usize;
    while d < n {
        out.push(d);
        d <<= 1;
    }
    out
}

/// Element range `[lo, hi)` of ring-allreduce segment `s` over `len`
/// elements split `n` ways (the standard balanced split; segments may be
/// empty when `len < n`).
pub(crate) fn ring_segment(s: usize, len: usize, n: usize) -> (usize, usize) {
    (s * len / n, (s + 1) * len / n)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn binomial_tree_is_consistent_for_all_sizes() {
        for n in 1..=17 {
            // Every non-root vrank appears exactly once as a child of its
            // parent, and subtree spans tile the tree.
            let mut seen = vec![false; n];
            seen[0] = true;
            for v in 0..n {
                for (c, span) in binomial_children(v, n) {
                    assert_eq!(binomial_parent(c), v, "n={n} child {c}");
                    assert_eq!(span, subtree_span(c, n));
                    assert!(!seen[c], "n={n} vrank {c} reached twice");
                    seen[c] = true;
                }
            }
            assert!(seen.iter().all(|&s| s), "n={n} unreached vranks");
            assert_eq!(subtree_span(0, n), n);
        }
    }

    #[test]
    fn recdbl_fold_partitions_ranks() {
        for n in 1..=17 {
            let p2 = pow2_floor(n);
            let mut core_seen = vec![false; p2];
            for rank in 0..n {
                match recdbl_role(rank, n) {
                    RecDblRole::Fold { partner } => {
                        assert_eq!(partner, rank + 1);
                        // The partner is a core rank that points back.
                        match recdbl_role(partner, n) {
                            RecDblRole::Core { folded, .. } => assert_eq!(folded, Some(rank)),
                            other => panic!("n={n}: fold partner has role {other:?}"),
                        }
                    }
                    RecDblRole::Core { newrank, .. } => {
                        assert!(newrank < p2);
                        assert!(!core_seen[newrank], "n={n} newrank {newrank} duplicated");
                        core_seen[newrank] = true;
                        assert_eq!(recdbl_rank_of(newrank, n), rank);
                    }
                }
            }
            assert!(core_seen.iter().all(|&s| s), "n={n} core ranks missing");
        }
    }

    #[test]
    fn bruck_rounds_cover_all_distances() {
        assert_eq!(bruck_rounds(1), Vec::<usize>::new());
        assert_eq!(bruck_rounds(2), vec![1]);
        assert_eq!(bruck_rounds(8), vec![1, 2, 4]);
        assert_eq!(bruck_rounds(10), vec![1, 2, 4, 8]);
    }

    #[test]
    fn ring_segments_tile_the_buffer() {
        for n in 1..=9 {
            for len in [0usize, 1, 5, 64, 1000] {
                let mut covered = 0usize;
                for s in 0..n {
                    let (lo, hi) = ring_segment(s, len, n);
                    assert_eq!(lo, covered);
                    covered = hi;
                }
                assert_eq!(covered, len);
            }
        }
    }

    #[test]
    fn bit_helpers() {
        assert_eq!(lowest_set_bit(12), 4);
        assert_eq!(lowest_set_bit(7), 1);
        assert_eq!(pow2_floor(1), 1);
        assert_eq!(pow2_floor(9), 8);
        assert_eq!(pow2_floor(16), 16);
    }
}
