//! Schedule executors for the collective engine.
//!
//! Each function walks a rank-symmetric plan from [`super::plan`] over
//! the paper's own primitives: symmetric [`Rank::sendrecv`] exchanges,
//! nonblocking requests (`irecv` + blocking sends for the all-to-all
//! family), and one-sided PSCW window puts (the pipelined ring
//! broadcast). All blocking goes through the existing park/wake sites,
//! so the thread and event backends stay byte-identical.
//!
//! Like the naive reference, every schedule runs as a *reliable section*
//! (lossy overload policies fall back to `Stall` inside a collective)
//! and aborts at the first failed edge — a dead partner surfaces as
//! [`ScimpiError::PeerDead`] instead of hanging.

use super::plan::{
    binomial_children, binomial_parent, bruck_rounds, pow2_floor, recdbl_rank_of, recdbl_role,
    ring_segment, RecDblRole,
};
use super::{coll_span, naive, AlltoallvParts, ReduceOp, Typed, COLL_TAG};
use crate::error::ScimpiError;
use crate::mailbox::{Source, TagSel};
use crate::p2p::RecvBuf;
use crate::runtime::Rank;
use crate::SendData;
use mpi_datatype::typed;

/// Serialise `values[lo..hi]` to little-endian bytes.
fn seg_bytes<T: Typed>(values: &[T], lo: usize, hi: usize) -> Vec<u8> {
    typed::to_bytes(&values[lo..hi])
}

/// Element-wise `acc[lo..hi] = combine(acc, other)` with `acc` as the
/// left operand (matching the naive chain's operand order).
fn combine_into<T: Typed>(op: ReduceOp, acc: &mut [T], lo: usize, other: &[u8]) {
    for (i, b) in typed::from_bytes::<T>(other).into_iter().enumerate() {
        acc[lo + i] = T::combine(op, acc[lo + i], b);
    }
}

/// Symmetric exchange of `send` for an equal-role partner's buffer of
/// known size, used by every pairwise round below.
fn exchange(
    r: &mut Rank,
    partner: usize,
    tag: i32,
    send: &[u8],
    recv_len: usize,
) -> Result<Vec<u8>, ScimpiError> {
    let mut buf = vec![0u8; recv_len];
    r.sendrecv(
        partner,
        tag,
        SendData::Bytes(send),
        Source::Rank(partner),
        TagSel::Value(tag),
        RecvBuf::Bytes(&mut buf),
    )?;
    Ok(buf)
}

// ---------------------------------------------------------------------
// Allreduce: recursive doubling (with the non-power-of-two fold) and the
// bandwidth-optimal ring (reduce-scatter + allgather).
// ---------------------------------------------------------------------

/// Recursive-doubling allreduce: log2 rounds of pairwise exchange over
/// the power-of-two core, with surplus ranks folded in and out (MPICH's
/// scheme, see [`recdbl_role`]).
pub(crate) fn recdbl_allreduce<T: Typed>(
    r: &mut Rank,
    values: &mut [T],
    op: ReduceOp,
) -> Result<(), ScimpiError> {
    let _reliable = crate::p2p::reliable_section();
    let n = r.size();
    let me = r.rank();
    let start = r.clock.now();
    let nbytes = values.len() * T::SIZE;
    match recdbl_role(me, n) {
        RecDblRole::Fold { partner } => {
            // Contribute, sit out the core exchange, collect the result.
            r.send(partner, COLL_TAG + 8, &typed::to_bytes(values))?;
            let mut bytes = vec![0u8; nbytes];
            r.recv(
                Source::Rank(partner),
                TagSel::Value(COLL_TAG + 8),
                &mut bytes,
            )?;
            values.copy_from_slice(&typed::from_bytes::<T>(&bytes));
        }
        RecDblRole::Core { newrank, folded } => {
            if let Some(f) = folded {
                let mut bytes = vec![0u8; nbytes];
                r.recv(Source::Rank(f), TagSel::Value(COLL_TAG + 8), &mut bytes)?;
                // The folded partner is the lower rank: it combines on
                // the left, mirroring ascending-rank reduction order.
                for (i, b) in typed::from_bytes::<T>(&bytes).into_iter().enumerate() {
                    values[i] = T::combine(op, b, values[i]);
                }
            }
            let p2 = pow2_floor(n);
            let mut mask = 1usize;
            while mask < p2 {
                let partner = recdbl_rank_of(newrank ^ mask, n);
                let got = exchange(r, partner, COLL_TAG + 8, &typed::to_bytes(values), nbytes)?;
                if partner < me {
                    for (i, b) in typed::from_bytes::<T>(&got).into_iter().enumerate() {
                        values[i] = T::combine(op, b, values[i]);
                    }
                } else {
                    combine_into(op, values, 0, &got);
                }
                mask <<= 1;
            }
            if let Some(f) = folded {
                r.send(f, COLL_TAG + 8, &typed::to_bytes(values))?;
            }
        }
    }
    coll_span(r, "coll.allreduce", start, nbytes);
    Ok(())
}

/// Ring allreduce: `n-1` reduce-scatter steps followed by `n-1`
/// allgather steps over neighbour exchanges; each step moves one
/// `len/n` segment, so every rank sends ~`2·len` elements total
/// regardless of rank count (bandwidth-optimal for large payloads).
pub(crate) fn ring_allreduce<T: Typed>(
    r: &mut Rank,
    values: &mut [T],
    op: ReduceOp,
) -> Result<(), ScimpiError> {
    let _reliable = crate::p2p::reliable_section();
    let n = r.size();
    let me = r.rank();
    if n == 1 {
        return Ok(());
    }
    let start = r.clock.now();
    let len = values.len();
    let succ = (me + 1) % n;
    let pred = (me + n - 1) % n;
    // Reduce-scatter: after step t every rank has combined t+1
    // contributions into segment (me - t - 1) mod n.
    for t in 0..n - 1 {
        let (slo, shi) = ring_segment((me + n - t) % n, len, n);
        let (rlo, rhi) = ring_segment((me + n - t - 1) % n, len, n);
        let mut buf = vec![0u8; (rhi - rlo) * T::SIZE];
        r.sendrecv(
            succ,
            COLL_TAG + 8,
            SendData::Bytes(&seg_bytes(values, slo, shi)),
            Source::Rank(pred),
            TagSel::Value(COLL_TAG + 8),
            RecvBuf::Bytes(&mut buf),
        )?;
        combine_into(op, values, rlo, &buf);
    }
    // Allgather: circulate the finished segments.
    for t in 0..n - 1 {
        let (slo, shi) = ring_segment((me + 1 + n - t) % n, len, n);
        let (rlo, rhi) = ring_segment((me + n - t) % n, len, n);
        let mut buf = vec![0u8; (rhi - rlo) * T::SIZE];
        r.sendrecv(
            succ,
            COLL_TAG + 8,
            SendData::Bytes(&seg_bytes(values, slo, shi)),
            Source::Rank(pred),
            TagSel::Value(COLL_TAG + 8),
            RecvBuf::Bytes(&mut buf),
        )?;
        for (i, b) in typed::from_bytes::<T>(&buf).into_iter().enumerate() {
            values[rlo + i] = b;
        }
    }
    coll_span(r, "coll.allreduce", start, len * T::SIZE);
    Ok(())
}

// ---------------------------------------------------------------------
// Scan: Hillis–Steele recursive doubling.
// ---------------------------------------------------------------------

/// Hillis–Steele inclusive scan: at distance `d` every rank ships its
/// running prefix to `rank + d` and folds in the prefix from `rank - d`
/// — `ceil(log2 n)` rounds instead of the naive `n-1` hop chain.
pub(crate) fn hillis_steele_scan<T: Typed>(
    r: &mut Rank,
    values: &mut [T],
    op: ReduceOp,
) -> Result<(), ScimpiError> {
    let _reliable = crate::p2p::reliable_section();
    let n = r.size();
    let me = r.rank();
    let nbytes = values.len() * T::SIZE;
    let mut d = 1usize;
    while d < n {
        let up = me + d < n;
        let down = me >= d;
        match (up, down) {
            (true, true) => {
                let mut buf = vec![0u8; nbytes];
                r.sendrecv(
                    me + d,
                    COLL_TAG + 3,
                    SendData::Bytes(&typed::to_bytes(values)),
                    Source::Rank(me - d),
                    TagSel::Value(COLL_TAG + 3),
                    RecvBuf::Bytes(&mut buf),
                )?;
                // The incoming prefix covers lower ranks: left operand.
                for (i, b) in typed::from_bytes::<T>(&buf).into_iter().enumerate() {
                    values[i] = T::combine(op, b, values[i]);
                }
            }
            (true, false) => r.send(me + d, COLL_TAG + 3, &typed::to_bytes(values))?,
            (false, true) => {
                let mut buf = vec![0u8; nbytes];
                r.recv(Source::Rank(me - d), TagSel::Value(COLL_TAG + 3), &mut buf)?;
                for (i, b) in typed::from_bytes::<T>(&buf).into_iter().enumerate() {
                    values[i] = T::combine(op, b, values[i]);
                }
            }
            (false, false) => {}
        }
        d <<= 1;
    }
    Ok(())
}

// ---------------------------------------------------------------------
// Gather/scatter: binomial trees over length-prefixed subtree streams.
// ---------------------------------------------------------------------

/// Parse a `(u64 len, bytes)*` stream into its blocks.
fn parse_stream(stream: &[u8], expect: usize) -> Vec<Vec<u8>> {
    let mut out = Vec::with_capacity(expect);
    let mut at = 0usize;
    for _ in 0..expect {
        let len = u64::from_le_bytes(stream[at..at + 8].try_into().expect("8 bytes")) as usize;
        at += 8;
        out.push(stream[at..at + len].to_vec());
        at += len;
    }
    debug_assert_eq!(at, stream.len());
    out
}

/// Append `(u64 len, bytes)` to a stream.
fn push_block(stream: &mut Vec<u8>, block: &[u8]) {
    stream.extend_from_slice(&(block.len() as u64).to_le_bytes());
    stream.extend_from_slice(block);
}

/// Binomial gatherv: each subtree aggregates its members' blocks into
/// one length-prefixed stream, so the root receives `log2 n` streams
/// instead of `n-1` individual messages.
pub(crate) fn binomial_gatherv(
    r: &mut Rank,
    root: usize,
    mine: &[u8],
) -> Result<Option<Vec<Vec<u8>>>, ScimpiError> {
    let _reliable = crate::p2p::reliable_section();
    let n = r.size();
    let start = r.clock.now();
    let vrank = (r.rank() + n - root) % n;
    // Stream for my subtree, vrank-ascending: my block, then each
    // child's aggregated stream (children cover contiguous vrank spans).
    let mut stream = Vec::new();
    push_block(&mut stream, mine);
    for (child, _span) in binomial_children(vrank, n) {
        let src = (child + root) % n;
        let mut len_buf = [0u8; 8];
        r.recv(Source::Rank(src), TagSel::Value(COLL_TAG + 1), &mut len_buf)?;
        let len = u64::from_le_bytes(len_buf) as usize;
        let mut sub = vec![0u8; len];
        r.recv(Source::Rank(src), TagSel::Value(COLL_TAG), &mut sub)?;
        stream.extend_from_slice(&sub);
    }
    if vrank != 0 {
        let dst = (binomial_parent(vrank) + root) % n;
        r.send(dst, COLL_TAG + 1, &(stream.len() as u64).to_le_bytes())?;
        r.send(dst, COLL_TAG, &stream)?;
        coll_span(r, "coll.gatherv", start, mine.len());
        return Ok(None);
    }
    let by_vrank = parse_stream(&stream, n);
    let mut out = vec![Vec::new(); n];
    for (v, block) in by_vrank.into_iter().enumerate() {
        out[(v + root) % n] = block;
    }
    coll_span(r, "coll.gatherv", start, mine.len());
    Ok(Some(out))
}

/// Binomial scatterv: the root peels per-subtree streams off `parts`
/// and each internal node forwards its children's slices, so no rank
/// sends more than `log2 n` messages.
pub(crate) fn binomial_scatterv(
    r: &mut Rank,
    root: usize,
    parts: Option<&[Vec<u8>]>,
) -> Result<Vec<u8>, ScimpiError> {
    let _reliable = crate::p2p::reliable_section();
    let n = r.size();
    let start = r.clock.now();
    let vrank = (r.rank() + n - root) % n;
    // My subtree's stream, vrank-ascending (my own block first).
    let stream = if vrank == 0 {
        let parts = parts.expect("validated by the dispatcher");
        let mut s = Vec::new();
        for v in 0..n {
            push_block(&mut s, &parts[(v + root) % n]);
        }
        s
    } else {
        let src = (binomial_parent(vrank) + root) % n;
        let mut len_buf = [0u8; 8];
        r.recv(Source::Rank(src), TagSel::Value(COLL_TAG + 4), &mut len_buf)?;
        let len = u64::from_le_bytes(len_buf) as usize;
        let mut s = vec![0u8; len];
        r.recv(Source::Rank(src), TagSel::Value(COLL_TAG + 5), &mut s)?;
        s
    };
    // Split the stream back into per-vrank blocks of my subtree, then
    // forward each child its contiguous span (largest subtree first,
    // mirroring the broadcast send phase).
    let span = super::plan::subtree_span(vrank, n);
    let blocks = parse_stream(&stream, span);
    for (child, child_span) in binomial_children(vrank, n).into_iter().rev() {
        let mut sub = Vec::new();
        for v in child..child + child_span {
            push_block(&mut sub, &blocks[v - vrank]);
        }
        let dst = (child + root) % n;
        r.send(dst, COLL_TAG + 4, &(sub.len() as u64).to_le_bytes())?;
        r.send(dst, COLL_TAG + 5, &sub)?;
    }
    let mine = blocks.into_iter().next().expect("own block present");
    coll_span(r, "coll.scatterv", start, mine.len());
    Ok(mine)
}

// ---------------------------------------------------------------------
// Allgather: neighbour ring, recursive doubling, and Bruck.
// ---------------------------------------------------------------------

/// One two-phase ragged exchange: lengths on `COLL_TAG+6`, data on
/// `COLL_TAG+7` (the receiver cannot size its buffer otherwise).
fn ragged_exchange(
    r: &mut Rank,
    dst: usize,
    src: usize,
    send: &[u8],
) -> Result<Vec<u8>, ScimpiError> {
    let mut len_buf = [0u8; 8];
    r.sendrecv(
        dst,
        COLL_TAG + 6,
        SendData::Bytes(&(send.len() as u64).to_le_bytes()),
        Source::Rank(src),
        TagSel::Value(COLL_TAG + 6),
        RecvBuf::Bytes(&mut len_buf),
    )?;
    let mut buf = vec![0u8; u64::from_le_bytes(len_buf) as usize];
    r.sendrecv(
        dst,
        COLL_TAG + 7,
        SendData::Bytes(send),
        Source::Rank(src),
        TagSel::Value(COLL_TAG + 7),
        RecvBuf::Bytes(&mut buf),
    )?;
    Ok(buf)
}

/// Ring allgather: `n-1` neighbour steps, each forwarding the block
/// received the step before. Per-step traffic is one block per link —
/// the bandwidth-optimal large-message schedule on a ringlet.
pub(crate) fn ring_allgather(r: &mut Rank, mine: &[u8]) -> Result<Vec<Vec<u8>>, ScimpiError> {
    let _reliable = crate::p2p::reliable_section();
    let n = r.size();
    let me = r.rank();
    let mut out: Vec<Vec<u8>> = vec![Vec::new(); n];
    out[me] = mine.to_vec();
    let succ = (me + 1) % n;
    let pred = (me + n - 1) % n;
    for t in 0..n - 1 {
        let fwd = (me + n - t) % n;
        let got = ragged_exchange(r, succ, pred, &out[fwd].clone())?;
        out[(me + n - t - 1) % n] = got;
    }
    Ok(out)
}

/// Recursive-doubling allgather (power-of-two member counts): at round
/// `mask` partners `vrank ^ mask` swap their full accumulated sets.
/// Non-power-of-two counts fall back to [`bruck_allgather`].
pub(crate) fn recdbl_allgather(r: &mut Rank, mine: &[u8]) -> Result<Vec<Vec<u8>>, ScimpiError> {
    let n = r.size();
    if !n.is_power_of_two() {
        return bruck_allgather(r, mine);
    }
    let _reliable = crate::p2p::reliable_section();
    let me = r.rank();
    let mut have: Vec<Option<Vec<u8>>> = vec![None; n];
    have[me] = Some(mine.to_vec());
    let mut mask = 1usize;
    while mask < n {
        let partner = me ^ mask;
        // Serialise my set as (u64 rank, u64 len, bytes)* in rank order.
        let mut stream = Vec::new();
        for (rank, block) in have.iter().enumerate() {
            if let Some(b) = block {
                stream.extend_from_slice(&(rank as u64).to_le_bytes());
                push_block(&mut stream, b);
            }
        }
        let got = ragged_exchange(r, partner, partner, &stream)?;
        let mut at = 0usize;
        while at < got.len() {
            let rank = u64::from_le_bytes(got[at..at + 8].try_into().expect("8 bytes")) as usize;
            let len =
                u64::from_le_bytes(got[at + 8..at + 16].try_into().expect("8 bytes")) as usize;
            have[rank] = Some(got[at + 16..at + 16 + len].to_vec());
            at += 16 + len;
        }
        mask <<= 1;
    }
    Ok(have
        .into_iter()
        .map(|b| b.expect("all blocks after log2 rounds"))
        .collect())
}

/// Bruck allgather: works for any member count in `ceil(log2 n)` rounds
/// of distance-doubling exchanges over distance-indexed blocks.
pub(crate) fn bruck_allgather(r: &mut Rank, mine: &[u8]) -> Result<Vec<Vec<u8>>, ScimpiError> {
    let _reliable = crate::p2p::reliable_section();
    let n = r.size();
    let me = r.rank();
    // have[d] = block of rank (me + d) % n.
    let mut have: Vec<Vec<u8>> = Vec::with_capacity(n);
    have.push(mine.to_vec());
    for d in bruck_rounds(n) {
        let cnt = d.min(n - d);
        let mut stream = Vec::new();
        for block in have.iter().take(cnt) {
            push_block(&mut stream, block);
        }
        let dst = (me + n - d) % n;
        let src = (me + d) % n;
        let got = ragged_exchange(r, dst, src, &stream)?;
        have.extend(parse_stream(&got, cnt));
    }
    let mut out = vec![Vec::new(); n];
    for (d, block) in have.into_iter().enumerate() {
        out[(me + d) % n] = block;
    }
    Ok(out)
}

// ---------------------------------------------------------------------
// All-to-all: Bruck for small equal blocks; nonblocking pairwise for
// the flat counts/displs variant.
// ---------------------------------------------------------------------

/// Bruck all-to-all for equal-size blocks: `ceil(log2 n)` rounds each
/// moving half the blocks, instead of `n-1` pairwise steps — the
/// latency-optimal small-message schedule.
pub(crate) fn bruck_alltoall(
    r: &mut Rank,
    sendblocks: &[Vec<u8>],
) -> Result<Vec<Vec<u8>>, ScimpiError> {
    let _reliable = crate::p2p::reliable_section();
    let n = r.size();
    let me = r.rank();
    let b = sendblocks[0].len();
    let start = r.clock.now();
    // Phase 1: local rotation so index i holds the block for (me+i)%n.
    let mut tmp: Vec<Vec<u8>> = (0..n).map(|i| sendblocks[(me + i) % n].clone()).collect();
    // Phase 2: for each bit, ship every block whose index has it set.
    for d in bruck_rounds(n) {
        let idxs: Vec<usize> = (0..n).filter(|i| i & d != 0).collect();
        let mut packed = Vec::with_capacity(idxs.len() * b);
        for &i in &idxs {
            packed.extend_from_slice(&tmp[i]);
        }
        // Send to rank me+d, receive from rank me-d (asymmetric pair);
        // equal blocks mean both directions carry `idxs.len() * b` bytes.
        let mut got = vec![0u8; idxs.len() * b];
        r.sendrecv(
            (me + d) % n,
            COLL_TAG + 2,
            SendData::Bytes(&packed),
            Source::Rank((me + n - d) % n),
            TagSel::Value(COLL_TAG + 2),
            RecvBuf::Bytes(&mut got),
        )?;
        for (slot, &i) in idxs.iter().enumerate() {
            tmp[i] = got[slot * b..(slot + 1) * b].to_vec();
        }
    }
    // Phase 3: index i now holds the block rank (me-i)%n sent to me.
    let mut out = vec![Vec::new(); n];
    for (i, block) in tmp.into_iter().enumerate() {
        out[(me + n - i) % n] = block;
    }
    coll_span(r, "coll.alltoall", start, n * b);
    Ok(out)
}

/// Flat-buffer all-to-all-v over the nonblocking request engine: one
/// pairwise count exchange, then every receive pre-posted as an `irecv`
/// while the sends run blocking on this thread (keeping the reliable
/// section's stall-fallback on the sending side). Returns the received
/// bytes flattened in source order plus per-source counts and displs.
pub(crate) fn alltoallv_requests(
    r: &mut Rank,
    sendbuf: &[u8],
    counts: &[usize],
    displs: &[usize],
) -> Result<AlltoallvParts, ScimpiError> {
    let _reliable = crate::p2p::reliable_section();
    let n = r.size();
    let me = r.rank();
    let start = r.clock.now();
    // Count exchange (pairwise, 8 bytes per step).
    let mut rcounts = vec![0usize; n];
    rcounts[me] = counts[me];
    for step in 1..n {
        let dst = (me + step) % n;
        let src = (me + n - step) % n;
        let mut cbuf = [0u8; 8];
        r.sendrecv(
            dst,
            COLL_TAG + 9,
            SendData::Bytes(&(counts[dst] as u64).to_le_bytes()),
            Source::Rank(src),
            TagSel::Value(COLL_TAG + 9),
            RecvBuf::Bytes(&mut cbuf),
        )?;
        rcounts[src] = u64::from_le_bytes(cbuf) as usize;
    }
    // Pre-post every receive, ascending source order (deterministic
    // matching), then drive the sends blocking in pairwise step order.
    let mut reqs = Vec::new();
    let mut req_src = Vec::new();
    for (src, &rc) in rcounts.iter().enumerate() {
        if src != me && rc > 0 {
            reqs.push(r.irecv(Source::Rank(src), TagSel::Value(COLL_TAG + 2), rc)?);
            req_src.push(src);
        }
    }
    for step in 1..n {
        let dst = (me + step) % n;
        let sl = &sendbuf[displs[dst]..displs[dst] + counts[dst]];
        if !sl.is_empty() {
            r.send(dst, COLL_TAG + 2, sl)?;
        }
    }
    let done = r.waitall(&mut reqs)?;
    // Assemble the flat receive buffer in source order.
    let mut by_src: Vec<Vec<u8>> = vec![Vec::new(); n];
    by_src[me] = sendbuf[displs[me]..displs[me] + counts[me]].to_vec();
    for (slot, recvd) in req_src.into_iter().zip(done) {
        by_src[slot] = recvd.data;
    }
    let mut rdispls = Vec::with_capacity(n);
    let mut flat = Vec::new();
    for src in 0..n {
        rdispls.push(flat.len());
        flat.extend_from_slice(&by_src[src]);
        debug_assert_eq!(by_src[src].len(), rcounts[src]);
    }
    coll_span(r, "coll.alltoallv", start, flat.len());
    Ok((flat, rcounts, rdispls))
}

// ---------------------------------------------------------------------
// One-sided pipelined ring broadcast.
// ---------------------------------------------------------------------

/// One-sided pipelined ring broadcast: the payload is cut into
/// `Tuning::coll_ring_chunk` pieces that flow down the ring as PSCW
/// window puts — rank `v` exposes its chunk buffer to `v-1`, reads each
/// arrived chunk locally, and puts it onward to `v+1` while the next
/// chunk is already in flight behind it. The caller has ensured
/// `Rank::coll_win` (see [`super::ensure_coll_win`]).
pub(crate) fn ring_bcast_onesided(
    r: &mut Rank,
    root: usize,
    buf: &mut [u8],
) -> Result<(), ScimpiError> {
    let n = r.size();
    let me = r.rank();
    let chunk = r.world.tuning.coll_ring_chunk;
    let start = r.clock.now();
    let v = (me + n - root) % n;
    let pred = (root + v + n - 1) % n;
    let succ = (root + v + 1) % n;
    let mut cw = r.coll_win.take().expect("collective window ensured");
    let res = (|| {
        // Pipelined store-and-forward: expose the window for chunk k+1
        // *before* forwarding chunk k, so the predecessor's put of the
        // next chunk overlaps this rank's put of the current one. The
        // exposure epoch (towards pred) and the access epoch (towards
        // succ) are directional per-peer signal pairs, so one window
        // carries both concurrently; `read_local` drains the landing
        // area before it is re-exposed, making the overwrite safe.
        if v > 0 {
            cw.win.post(r, &[pred]);
        }
        let mut at = 0usize;
        while at < buf.len() {
            let len = chunk.min(buf.len() - at);
            if v > 0 {
                cw.win.wait(r, &[pred])?;
                cw.win.read_local(r, 0, &mut buf[at..at + len]);
                if at + len < buf.len() {
                    cw.win.post(r, &[pred]);
                }
            }
            if v + 1 < n {
                cw.win.start(r, &[succ])?;
                cw.win.put(r, succ, 0, &buf[at..at + len])?;
                obs::add(obs::Counter::CollOnesidedBytes, len as u64);
                cw.win.complete(r, &[succ])?;
            }
            at += len;
        }
        Ok(())
    })();
    r.coll_win = Some(cw);
    coll_span(r, "coll.bcast", start, buf.len());
    res
}

// The naive module is re-exported for dispatcher fallbacks.
pub(crate) use naive::alltoall_pairwise;
