//! The legacy linear/binomial reference schedules (`Algo::Naive`).
//!
//! These are the pre-engine collective implementations, moved here
//! verbatim (generalised over the element type where the old surface was
//! `f64`-only, with identical wire bytes for `f64`). They are kept
//! bit-identical on the wire — same tags, same message sizes, same edge
//! order — because the chaos suite's deterministic error-site maps
//! (`tests/chaos.rs`) and the committed bench baselines encode exactly
//! these conversations. Every other algorithm in [`super::algos`] is
//! differentially tested against this module.

use super::{coll_span, ReduceOp, Typed, COLL_TAG};
use crate::error::ScimpiError;
use crate::mailbox::{Source, TagSel};
use crate::p2p::RecvBuf;
use crate::runtime::Rank;
use crate::SendData;
use mpi_datatype::typed;

/// Binomial-tree broadcast (the legacy `bcast` body).
pub(crate) fn bcast(r: &mut Rank, root: usize, buf: &mut [u8]) -> Result<(), ScimpiError> {
    let _reliable = crate::p2p::reliable_section();
    let size = r.size();
    if size == 1 {
        return Ok(());
    }
    let start = r.clock.now();
    let vrank = (r.rank() + size - root) % size;
    // Receive phase.
    let mut mask = 1usize;
    while mask < size {
        if vrank & mask != 0 {
            let src = (vrank - mask + root) % size;
            r.recv(Source::Rank(src), TagSel::Value(COLL_TAG), buf)?;
            break;
        }
        mask <<= 1;
    }
    // Send phase.
    mask >>= 1;
    while mask > 0 {
        if vrank + mask < size {
            let dst = (vrank + mask + root) % size;
            let copy = buf.to_vec();
            r.send(dst, COLL_TAG, &copy)?;
        }
        mask >>= 1;
    }
    coll_span(r, "coll.bcast", start, buf.len());
    Ok(())
}

/// Binomial-tree reduce onto `root` (the legacy `reduce_f64` body,
/// element-generic). Returns the result on `root`, `None` elsewhere.
pub(crate) fn reduce<T: Typed>(
    r: &mut Rank,
    root: usize,
    values: &[T],
    op: ReduceOp,
) -> Result<Option<Vec<T>>, ScimpiError> {
    let _reliable = crate::p2p::reliable_section();
    let size = r.size();
    let start = r.clock.now();
    let vrank = (r.rank() + size - root) % size;
    let mut acc = values.to_vec();
    let mut mask = 1usize;
    while mask < size {
        if vrank & mask != 0 {
            let dst = (vrank - mask + root) % size;
            let bytes = typed::to_bytes(&acc);
            r.send(dst, COLL_TAG, &bytes)?;
            coll_span(r, "coll.reduce", start, values.len() * T::SIZE);
            return Ok(None);
        }
        if vrank + mask < size {
            let src = (vrank + mask + root) % size;
            let mut bytes = vec![0u8; acc.len() * T::SIZE];
            r.recv(Source::Rank(src), TagSel::Value(COLL_TAG), &mut bytes)?;
            let other: Vec<T> = typed::from_bytes(&bytes);
            for (a, b) in acc.iter_mut().zip(other) {
                *a = T::combine(op, *a, b);
            }
        }
        mask <<= 1;
    }
    coll_span(r, "coll.reduce", start, values.len() * T::SIZE);
    Ok(if r.rank() == root { Some(acc) } else { None })
}

/// Reduce-to-0 plus broadcast (the legacy `allreduce_f64` composition).
pub(crate) fn allreduce<T: Typed>(
    r: &mut Rank,
    values: &mut [T],
    op: ReduceOp,
) -> Result<(), ScimpiError> {
    let start = r.clock.now();
    let reduced = reduce(r, 0, values, op)?;
    let mut bytes = match reduced {
        Some(v) => typed::to_bytes(&v),
        None => vec![0u8; values.len() * T::SIZE],
    };
    bcast(r, 0, &mut bytes)?;
    coll_span(r, "coll.allreduce", start, values.len() * T::SIZE);
    values.copy_from_slice(&typed::from_bytes::<T>(&bytes));
    Ok(())
}

/// The sender side of [`gatherv`]'s two-message protocol.
pub(crate) fn gather_send(r: &mut Rank, root: usize, mine: &[u8]) -> Result<(), ScimpiError> {
    let _reliable = crate::p2p::reliable_section();
    let len = (mine.len() as u64).to_le_bytes();
    r.send(root, COLL_TAG + 1, &len)?;
    if !mine.is_empty() {
        r.send(root, COLL_TAG, mine)?;
    }
    Ok(())
}

/// Linear gather with variable sizes (the legacy `gatherv` body).
pub(crate) fn gatherv(
    r: &mut Rank,
    root: usize,
    mine: &[u8],
) -> Result<Option<Vec<Vec<u8>>>, ScimpiError> {
    let _reliable = crate::p2p::reliable_section();
    let start = r.clock.now();
    if r.rank() != root {
        gather_send(r, root, mine)?;
        coll_span(r, "coll.gatherv", start, mine.len());
        return Ok(None);
    }
    let mut out: Vec<Vec<u8>> = vec![Vec::new(); r.size()];
    out[root] = mine.to_vec();
    // Indexed loop: the body needs `&mut r` for recv, which rules out
    // iterating `out` directly.
    #[allow(clippy::needless_range_loop)]
    for src in 0..r.size() {
        if src == root {
            continue;
        }
        let mut len_buf = [0u8; 8];
        r.recv(Source::Rank(src), TagSel::Value(COLL_TAG + 1), &mut len_buf)?;
        let len = u64::from_le_bytes(len_buf) as usize;
        let mut data = vec![0u8; len];
        if len > 0 {
            r.recv(Source::Rank(src), TagSel::Value(COLL_TAG), &mut data)?;
        }
        out[src] = data;
    }
    coll_span(r, "coll.gatherv", start, mine.len());
    Ok(Some(out))
}

/// Linear scatter with variable sizes: the rooted mirror of [`gatherv`]
/// (two-message protocol per destination, in rank order).
pub(crate) fn scatterv(
    r: &mut Rank,
    root: usize,
    parts: Option<&[Vec<u8>]>,
) -> Result<Vec<u8>, ScimpiError> {
    let _reliable = crate::p2p::reliable_section();
    let start = r.clock.now();
    let mine = if r.rank() == root {
        let parts = parts.expect("validated by the dispatcher");
        for (dst, part) in parts.iter().enumerate() {
            if dst == root {
                continue;
            }
            let len = (part.len() as u64).to_le_bytes();
            r.send(dst, COLL_TAG + 4, &len)?;
            if !part.is_empty() {
                r.send(dst, COLL_TAG + 5, part)?;
            }
        }
        parts[root].clone()
    } else {
        let mut len_buf = [0u8; 8];
        r.recv(
            Source::Rank(root),
            TagSel::Value(COLL_TAG + 4),
            &mut len_buf,
        )?;
        let len = u64::from_le_bytes(len_buf) as usize;
        let mut data = vec![0u8; len];
        if len > 0 {
            r.recv(Source::Rank(root), TagSel::Value(COLL_TAG + 5), &mut data)?;
        }
        data
    };
    coll_span(r, "coll.scatterv", start, mine.len());
    Ok(mine)
}

/// Gather-to-0 plus double broadcast (the legacy `allgather` body —
/// MPICH's small-message strategy).
pub(crate) fn allgather(r: &mut Rank, mine: &[u8]) -> Result<Vec<Vec<u8>>, ScimpiError> {
    let gathered = gatherv(r, 0, mine)?;
    // Serialise as length-prefixed stream and broadcast.
    let mut stream = Vec::new();
    if let Some(parts) = gathered {
        for p in &parts {
            stream.extend_from_slice(&(p.len() as u64).to_le_bytes());
            stream.extend_from_slice(p);
        }
    }
    let mut len_buf = (stream.len() as u64).to_le_bytes();
    bcast(r, 0, &mut len_buf)?;
    let total = u64::from_le_bytes(len_buf) as usize;
    stream.resize(total, 0);
    bcast(r, 0, &mut stream)?;
    // Deserialise.
    let mut out = Vec::with_capacity(r.size());
    let mut at = 0usize;
    for _ in 0..r.size() {
        let len = u64::from_le_bytes(stream[at..at + 8].try_into().expect("8 bytes")) as usize;
        at += 8;
        out.push(stream[at..at + len].to_vec());
        at += len;
    }
    Ok(out)
}

/// Linear inclusive-scan chain (the legacy `scan_sum_f64` body,
/// element- and operator-generic).
pub(crate) fn scan<T: Typed>(
    r: &mut Rank,
    values: &mut [T],
    op: ReduceOp,
) -> Result<(), ScimpiError> {
    let _reliable = crate::p2p::reliable_section();
    if r.rank() > 0 {
        let mut bytes = vec![0u8; values.len() * T::SIZE];
        r.recv(
            Source::Rank(r.rank() - 1),
            TagSel::Value(COLL_TAG + 3),
            &mut bytes,
        )?;
        let prev: Vec<T> = typed::from_bytes(&bytes);
        for (a, p) in values.iter_mut().zip(prev) {
            *a = T::combine(op, *a, p);
        }
    }
    if r.rank() + 1 < r.size() {
        let bytes = typed::to_bytes(values);
        r.send(r.rank() + 1, COLL_TAG + 3, &bytes)?;
    }
    Ok(())
}

/// Pairwise-exchange all-to-all over equal-or-ragged byte blocks (the
/// legacy `alltoall` body). Aborts at the first failed step: a dead
/// partner surfaces as [`ScimpiError::PeerDead`] instead of hanging.
pub(crate) fn alltoall_pairwise(
    r: &mut Rank,
    sendblocks: &[Vec<u8>],
) -> Result<Vec<Vec<u8>>, ScimpiError> {
    let _reliable = crate::p2p::reliable_section();
    let start = r.clock.now();
    let total: usize = sendblocks.iter().map(Vec::len).sum();
    let me = r.rank();
    let n = r.size();
    let mut out: Vec<Vec<u8>> = vec![Vec::new(); n];
    out[me] = sendblocks[me].clone();
    for step in 1..n {
        let dst = (me + step) % n;
        let src = (me + n - step) % n;
        let mut buf = vec![0u8; sendblocks[dst].len().max(1 << 20)];
        let st = r.sendrecv(
            dst,
            COLL_TAG + 2,
            SendData::Bytes(&sendblocks[dst]),
            Source::Rank(src),
            TagSel::Value(COLL_TAG + 2),
            RecvBuf::Bytes(&mut buf),
        )?;
        buf.truncate(st.len);
        out[src] = buf;
    }
    coll_span(r, "coll.alltoall", start, total);
    Ok(out)
}
