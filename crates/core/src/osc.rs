//! MPI-2 one-sided communication (paper §4).
//!
//! A **window** exposes a contiguous memory area of every rank to all
//! others. At creation SCI-MPICH remembers which parts of the global
//! window live in **SCI shared memory** (allocated through
//! `MPI_Alloc_mem`, [`Rank::alloc_mem`]) and which are **private** process
//! memory:
//!
//! * shared parts are accessed **directly** by transparent remote
//!   stores/loads, followed by store barriers at synchronisation;
//! * private parts are accessed by **emulation** — a control message plus
//!   a remote interrupt invokes a handler at the target that accepts or
//!   delivers the data with the ordinary transfer protocols.
//!
//! Because SCI remote *reads* are far slower than writes (Figure 1),
//! direct reading pays off only for small amounts; larger `MPI_Get`s are
//! converted to a **remote-put** performed by the target (§4.2).
//!
//! All three MPI-2 synchronisation modes are provided: `fence`,
//! post/start/complete/wait, and passive-target `lock`/`unlock` built on
//! the shared-memory locks of [`smi::SmiLock`] (reference 14).

use crate::error::ScimpiError;
use crate::mailbox::Ctrl;
use crate::request::Request;
use crate::runtime::Rank;
use crate::tuning::{IntegrityMode, PackPath};
use mpi_datatype::{ff, Committed};
use obs::attrib::{self, Bucket, WaitKind};
use sci_fabric::{crc32, ConnectionMonitor, PioStream, SciError, SeqStatus, SharedMem};
use simclock::{SimDuration, SimTime};
use smi::{ProcId, SharedRegion, SmiLock, TimeBarrier};
use std::sync::Arc;

/// Memory registered with `MPI_Alloc_mem`: a slice of this rank's shared
/// segment pool, directly accessible to remote CPUs.
#[derive(Clone, Debug)]
pub struct AllocMem {
    pub(crate) rank: usize,
    pub(crate) region: Arc<SharedRegion>,
    /// Byte offset inside the pool region.
    pub offset: usize,
    /// Allocation length.
    pub len: usize,
}

/// What a rank contributes to a window.
#[derive(Clone)]
pub enum WinMemory {
    /// Memory from [`Rank::alloc_mem`] — remotely accessible, enables the
    /// direct path.
    Alloc(AllocMem),
    /// `len` bytes of ordinary (private) process memory — forces the
    /// emulation path.
    Private(usize),
}

/// Reduction operators for `MPI_Accumulate`.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum AccumulateOp {
    /// Element-wise sum (`MPI_SUM`) over `f64` elements.
    SumF64,
    /// Element-wise sum over `i64` elements.
    SumI64,
    /// Element-wise maximum over `f64` elements.
    MaxF64,
    /// Overwrite (`MPI_REPLACE`).
    Replace,
}

#[derive(Clone)]
enum TargetMem {
    Shared {
        region: Arc<SharedRegion>,
        offset: usize,
    },
    Private {
        mem: Arc<SharedMem>,
    },
}

struct WindowShared {
    id: u64,
    targets: Vec<(TargetMem, usize)>,
    locks: Vec<SmiLock>,
    fence: TimeBarrier,
    /// World rank of each window target: windows are created over the
    /// membership epoch current at creation, and target indices are
    /// *logical* ranks of that epoch.
    members: Arc<Vec<usize>>,
    /// Per-window integrity override; `None` follows
    /// `Tuning::integrity_mode`. Recovery-critical windows (buddy
    /// checkpoints) force `EndToEnd` regardless of the run's default.
    integrity_override: Option<IntegrityMode>,
}

/// Per-target direct-path health, driving the graceful degradation of §4:
/// when transparent remote access to a shared target keeps failing (both
/// the primary and any alternate route), the window falls back to the
/// control-message emulation path for that target until a fence-time
/// connection probe shows the direct path healthy again.
#[derive(Clone, Copy, Default)]
struct FallbackState {
    /// Direct access disabled — operations go through emulation.
    active: bool,
    /// Consecutive direct-path failures observed so far.
    consecutive: u32,
}

/// One put of an `EndToEnd` integrity epoch: the intended target image
/// and its CRC32, verified against the target region at synchronisation
/// and rewritten (bounded) on mismatch.
struct PutRecord {
    target: usize,
    /// Window-relative byte offset at the target.
    offset: usize,
    /// CRC32 of `data`, computed (and charged) at put time.
    crc: u32,
    /// The intended bytes, kept for retransmission.
    data: Vec<u8>,
}

/// A one-sided communication window (`MPI_Win`).
pub struct Window {
    shared: Arc<WindowShared>,
    /// Open PIO streams to shared targets (kept across ops so consecutive
    /// ascending accesses merge, and so outstanding writes are tracked).
    streams: Vec<Option<PioStream>>,
    /// Per-target direct→emulated degradation state.
    fallback: Vec<FallbackState>,
    /// Per-target busy-until time of the emulation handler: requests to
    /// one target serialise (each costs a remote interrupt plus handler
    /// time on the target CPU).
    emu_busy: Vec<SimTime>,
    /// Latest completion time of emulated operations.
    emu_outstanding: SimTime,
    /// Epoch ledger of puts awaiting `EndToEnd` verification (empty in
    /// the other integrity modes).
    put_records: Vec<PutRecord>,
}

/// Cost charged at the target for servicing one emulation request
/// (handler dispatch, excluding data movement).
const HANDLER_COST: SimDuration = SimDuration::from_us(3);

/// Record an OSC operation span (a single relaxed load when recording is
/// off).
fn osc_span(
    rank: &Rank,
    name: &'static str,
    start: SimTime,
    bytes: usize,
    target: usize,
    path: &'static str,
) {
    if obs::is_enabled() {
        obs::span(
            name,
            start,
            rank.clock.now(),
            vec![
                ("bytes", obs::Arg::U64(bytes as u64)),
                ("target", obs::Arg::U64(target as u64)),
                ("path", obs::Arg::Str(path.into())),
            ],
        );
    }
}

fn pscw_handle(win: u64, from: usize, to: usize, phase: u64) -> u64 {
    // Window ids are globally unique; fold the conversation into a
    // collision-free 64-bit handle space.
    (win << 24) ^ ((from as u64) << 14) ^ ((to as u64) << 4) ^ phase
}

impl Rank {
    /// `MPI_Alloc_mem`: allocate remotely accessible memory from this
    /// rank's shared-segment pool. Pool exhaustion comes back as
    /// [`ScimpiError::WindowError`].
    pub fn alloc_mem(&mut self, len: usize) -> Result<AllocMem, ScimpiError> {
        // Governed resource: remotely accessible memory counts against
        // `Tuning::window_budget_bytes` before the pool is consulted.
        self.world
            .charge_window(self.rank, len)
            .map_err(|e| self.world.escalate(e))?;
        let alloced = self.world.alloc_pools[self.rank].lock().unwrap().alloc(len);
        let offset = match alloced {
            Ok(o) => o,
            Err(e) => {
                // The charge is returned when the pool itself refuses.
                self.world.release_window(self.rank, len);
                return Err(ScimpiError::WindowError(format!(
                    "shared-segment pool exhausted allocating {len} bytes on rank {}: {e:?}",
                    self.rank
                )));
            }
        };
        Ok(AllocMem {
            rank: self.rank,
            region: self.world.alloc_region(self.rank),
            offset,
            len,
        })
    }

    /// `MPI_Free_mem`.
    pub fn free_mem(&mut self, mem: AllocMem) {
        self.world.alloc_pools[self.rank]
            .lock()
            .unwrap()
            .free(mem.offset)
            .expect("double free of alloc_mem");
        self.world.release_window(self.rank, mem.len);
    }

    /// `MPI_Win_create` (collective): expose `mem` to all ranks of the
    /// current membership epoch. Registration failures come back as
    /// [`ScimpiError::WindowError`].
    pub fn win_create(&mut self, mem: WinMemory) -> Result<Window, ScimpiError> {
        self.win_create_with_integrity(mem, None)
    }

    /// [`Rank::win_create`] with a per-window integrity override:
    /// `Some(mode)` pins this window's put/get verification to `mode`
    /// regardless of `Tuning::integrity_mode` (the buddy-checkpoint
    /// window forces `EndToEnd` this way); `None` follows the tuning.
    pub fn win_create_with_integrity(
        &mut self,
        mem: WinMemory,
        integrity_override: Option<IntegrityMode>,
    ) -> Result<Window, ScimpiError> {
        let contrib: (TargetMem, usize) = match mem {
            WinMemory::Alloc(am) => {
                assert_eq!(am.rank, self.world_rank(), "alloc_mem from another rank");
                // Already charged against the window budget by
                // `alloc_mem`; don't double-count the same bytes.
                (
                    TargetMem::Shared {
                        region: am.region,
                        offset: am.offset,
                    },
                    am.len,
                )
            }
            WinMemory::Private(len) => {
                // Private window memory is allocated here, so it is
                // charged here (windows live until teardown; there is
                // no `MPI_Win_free` in this subset yet).
                self.world
                    .charge_window(self.rank, len)
                    .map_err(|e| self.world.escalate(e))?;
                (
                    TargetMem::Private {
                        mem: Arc::new(SharedMem::new(len)),
                    },
                    len,
                )
            }
        };
        let size = self.size();
        let members = Arc::clone(&self.members);
        let targets = self.collective_gather(contrib);
        let id = self.collective_gather(if self.rank() == 0 {
            self.world.handle()
        } else {
            0
        })[0];
        if self.rank() == 0 {
            let shared = Arc::new(WindowShared {
                id,
                locks: members
                    .iter()
                    .map(|&w| SmiLock::new(Arc::clone(&self.world.smi), ProcId(w)))
                    .collect(),
                fence: TimeBarrier::new(size, self.world.tuning.barrier_hop),
                targets,
                members: Arc::clone(&members),
                integrity_override,
            });
            self.world
                .windows
                .lock()
                .unwrap()
                .insert(id, shared as Arc<dyn std::any::Any + Send + Sync>);
        }
        // Make the insert visible to everyone.
        self.collective_gather(());
        let shared = self
            .world
            .windows
            .lock()
            .unwrap()
            .get(&id)
            .ok_or_else(|| {
                ScimpiError::WindowError(format!("window {id} was not registered by rank 0"))
            })?
            .clone()
            .downcast::<WindowShared>()
            .map_err(|_| {
                ScimpiError::WindowError(format!("window {id} registered with a mismatched type"))
            })?;
        Ok(Window {
            streams: (0..size).map(|_| None).collect(),
            emu_busy: vec![SimTime::ZERO; size],
            fallback: vec![FallbackState::default(); size],
            shared,
            emu_outstanding: SimTime::ZERO,
            put_records: Vec::new(),
        })
    }
}

impl Window {
    /// Window size at `target`.
    pub fn len(&self, target: usize) -> usize {
        self.shared.targets[target].1
    }

    /// True if the window is empty at `target`.
    pub fn is_empty(&self, target: usize) -> bool {
        self.len(target) == 0
    }

    /// True if `target`'s part of the window is directly accessible SCI
    /// shared memory.
    pub fn is_shared(&self, target: usize) -> bool {
        matches!(self.shared.targets[target].0, TargetMem::Shared { .. })
    }

    /// The integrity mode governing this window's transfers: the
    /// per-window override when one was pinned at creation, otherwise
    /// the run's `Tuning::integrity_mode`.
    fn imode(&self, rank: &Rank) -> IntegrityMode {
        self.shared
            .integrity_override
            .unwrap_or(rank.world.tuning.integrity_mode)
    }

    /// World rank of (logical) window target `target`.
    fn world_of(&self, target: usize) -> usize {
        self.shared.members[target]
    }

    /// This rank's target index inside the window. Windows are pinned to
    /// the membership epoch current at creation, so after a
    /// [`crate::recovery::shrink`] a survivor's *logical* rank may no
    /// longer equal its index here — resolve through the world rank,
    /// which never changes.
    fn local_index(&self, rank: &Rank) -> usize {
        let me = rank.world_rank();
        self.shared
            .members
            .iter()
            .position(|&w| w == me)
            .expect("rank is a member of its own window")
    }

    fn check(&self, target: usize, offset: usize, len: usize) -> Result<(), SciError> {
        let winlen = self.len(target);
        if offset.checked_add(len).is_none_or(|end| end > winlen) {
            return Err(SciError::OutOfBounds(sci_fabric::mem::OutOfBounds {
                offset,
                len,
                capacity: winlen,
            }));
        }
        Ok(())
    }

    /// Is the direct transparent-remote-access path in use for `target`?
    fn direct_active(&self, target: usize) -> bool {
        self.is_shared(target) && !self.fallback[target].active
    }

    /// A successful direct access clears the failure streak.
    fn note_direct_success(&mut self, target: usize) {
        self.fallback[target].consecutive = 0;
    }

    /// Record a direct-path failure. Returns `Ok(())` when the failure
    /// streak reached `Tuning::osc_fallback_threshold` and the target has
    /// been demoted to the emulation path (the caller then serves the
    /// current operation through it); below the threshold the error is
    /// returned for the application to retry.
    fn note_direct_failure(
        &mut self,
        rank: &Rank,
        target: usize,
        e: SciError,
    ) -> Result<(), SciError> {
        let threshold = rank.world.tuning.osc_fallback_threshold;
        let fb = &mut self.fallback[target];
        fb.consecutive += 1;
        if fb.consecutive < threshold {
            return Err(e);
        }
        fb.active = true;
        self.streams[target] = None;
        obs::inc(obs::Counter::OscFallbacks);
        if obs::is_enabled() {
            obs::instant(
                "ft.osc_fallback",
                rank.clock.now(),
                vec![("target", obs::Arg::U64(target as u64))],
            );
        }
        Ok(())
    }

    /// Every emulated round trip needs the target's CPU to run the
    /// handler — a dead target is an error, not a hang. `target_w` is
    /// the target's *world* rank.
    fn ensure_alive(rank: &Rank, target_w: usize) -> Result<(), SciError> {
        if rank.world.peer_dead(target_w) {
            return Err(SciError::PeerDead(target_w));
        }
        Ok(())
    }

    /// Apply the fabric's silent faults to a wire image travelling
    /// between the node `pair` (emulation packets and target-executed
    /// returns move through plain messages, not `SharedMem`, so the
    /// per-pair fault streams are applied here). Returns the fault count.
    fn corrupt_wire(rank: &mut Rank, pair: (usize, usize), wire: &mut [u8]) -> usize {
        let txn = rank.world.fabric.params().stream_buffer_bytes;
        rank.world.fabric.faults().corrupt_buffer(pair, txn, wire)
    }

    /// Count corruption that landed with no covering check (`Off`
    /// everywhere; paths outside the sequence guard in `SequenceCheck`).
    fn note_uncovered(rank: &Rank, n: usize, path: &'static str) {
        if n > 0 {
            obs::add(obs::Counter::UndetectedAtOff, n as u64);
            if obs::is_enabled() {
                obs::instant(
                    "ft.integrity.silent",
                    rank.clock.now(),
                    vec![
                        ("path", obs::Arg::Str(path.into())),
                        ("faults", obs::Arg::U64(n as u64)),
                    ],
                );
            }
        }
    }

    /// A detected corruption: counter plus trace instant.
    fn note_detected(rank: &Rank, path: &'static str, peer: usize) {
        obs::inc(obs::Counter::CorruptionsDetected);
        obs::instant(
            "ft.integrity.detected",
            rank.clock.now(),
            vec![
                ("path", obs::Arg::Str(path.into())),
                ("peer", obs::Arg::U64(peer as u64)),
            ],
        );
    }

    /// A retransmission: counter plus trace instant.
    fn note_retransmit(rank: &Rank, path: &'static str, attempt: u32) {
        obs::inc(obs::Counter::Retransmits);
        obs::instant(
            "ft.integrity.retransmit",
            rank.clock.now(),
            vec![
                ("path", obs::Arg::Str(path.into())),
                ("attempt", obs::Arg::U64(attempt as u64)),
            ],
        );
    }

    /// Record a put for `EndToEnd` epoch verification, charging the
    /// origin's CRC computation over the intended image. A later access
    /// overwriting an earlier one's region within the same epoch (ordered
    /// accumulates, notably) supersedes its record — only the final image
    /// can verify against memory.
    fn record_put(&mut self, rank: &mut Rank, target: usize, offset: usize, data: &[u8]) {
        attrib::advance(
            &mut rank.clock,
            Bucket::Pack,
            rank.world.crc_cost(data.len()),
        );
        let (lo, hi) = (offset, offset + data.len());
        self.put_records
            .retain(|r| r.target != target || r.offset + r.data.len() <= lo || hi <= r.offset);
        self.put_records.push(PutRecord {
            target,
            offset,
            crc: crc32(data),
            data: data.to_vec(),
        });
    }

    /// Verified delivery of one emulation packet (`EndToEnd`): each
    /// attempt sends a fresh wire image; the target's CRC verdict is
    /// collapsed into this loop (the simulator knows ground truth),
    /// charging a CRC per attempt and one handler round trip per
    /// retransmission. Returns the delivered (clean) payload.
    fn deliver_packet(
        rank: &mut Rank,
        target_w: usize,
        data: &[u8],
        what: &'static str,
    ) -> Result<Vec<u8>, ScimpiError> {
        let pair = (rank.node().0, rank.world.node_of(target_w).0);
        let mut retransmits = 0u32;
        loop {
            attrib::advance(
                &mut rank.clock,
                Bucket::Pack,
                rank.world.crc_cost(data.len()),
            );
            let mut wire = data.to_vec();
            let n = Self::corrupt_wire(rank, pair, &mut wire);
            if n == 0 {
                return Ok(wire);
            }
            Self::note_detected(rank, "osc.emulated", target_w);
            if retransmits >= rank.world.tuning.max_retransmits {
                return Err(ScimpiError::DataCorruption {
                    peer: target_w,
                    what,
                    retransmits,
                });
            }
            retransmits += 1;
            Self::note_retransmit(rank, "osc.emulated", retransmits);
            let roundtrip = Self::handler_roundtrip_cost(rank, target_w, data.len());
            attrib::advance(&mut rank.clock, Bucket::Transfer, roundtrip);
        }
    }

    /// Return-path (target → origin) integrity for data a target-executed
    /// transfer landed in `dst`: `EndToEnd` re-requests a corrupted
    /// return (bounded); the other modes let the flips stand, counted as
    /// uncovered.
    fn verify_return(
        rank: &mut Rank,
        target_w: usize,
        mode: IntegrityMode,
        dst: &mut [u8],
        clean: &[u8],
        what: &'static str,
    ) -> Result<(), ScimpiError> {
        let pair = (rank.world.node_of(target_w).0, rank.node().0);
        let mut retransmits = 0u32;
        loop {
            dst.copy_from_slice(clean);
            let n = Self::corrupt_wire(rank, pair, dst);
            if mode != IntegrityMode::EndToEnd {
                Self::note_uncovered(rank, n, what);
                return Ok(());
            }
            attrib::advance(
                &mut rank.clock,
                Bucket::Pack,
                rank.world.crc_cost(dst.len()),
            );
            if n == 0 {
                return Ok(());
            }
            Self::note_detected(rank, what, target_w);
            if retransmits >= rank.world.tuning.max_retransmits {
                return Err(ScimpiError::DataCorruption {
                    peer: target_w,
                    what,
                    retransmits,
                });
            }
            retransmits += 1;
            Self::note_retransmit(rank, what, retransmits);
            let roundtrip = Self::handler_roundtrip_cost(rank, target_w, dst.len());
            attrib::advance(&mut rank.clock, Bucket::Transfer, roundtrip);
        }
    }

    /// Direct remote read with integrity handling: `EndToEnd` re-reads a
    /// faulted interval (a modeled CRC handshake per attempt) up to the
    /// retransmission budget; the other modes count flips as uncovered.
    fn read_direct(
        rank: &mut Rank,
        reader: &sci_fabric::PioReader,
        at: usize,
        dst: &mut [u8],
        target_w: usize,
        mode: IntegrityMode,
        what: &'static str,
    ) -> Result<(), ScimpiError> {
        let mut retransmits = 0u32;
        loop {
            let n = attrib::charged(&mut rank.clock, Bucket::Transfer, |clock| {
                reader.read_counted(clock, at, dst)
            })
            .map_err(ScimpiError::Fabric)?;
            if mode != IntegrityMode::EndToEnd {
                Self::note_uncovered(rank, n as usize, what);
                return Ok(());
            }
            attrib::advance(
                &mut rank.clock,
                Bucket::Pack,
                rank.world.crc_cost(dst.len()),
            );
            if n == 0 {
                return Ok(());
            }
            Self::note_detected(rank, what, target_w);
            if retransmits >= rank.world.tuning.max_retransmits {
                return Err(ScimpiError::DataCorruption {
                    peer: target_w,
                    what,
                    retransmits,
                });
            }
            retransmits += 1;
            Self::note_retransmit(rank, what, retransmits);
        }
    }

    /// Write into `target`'s backing window memory (the data movement of
    /// the emulated path — the handler's copy on the target side).
    fn backing_write(&self, target: usize, at: usize, data: &[u8]) -> Result<(), SciError> {
        match &self.shared.targets[target].0 {
            TargetMem::Shared { region, offset } => region
                .segment()
                .mem()
                .write(offset + at, data)
                .map_err(SciError::from),
            TargetMem::Private { mem } => mem.write(at, data).map_err(SciError::from),
        }
    }

    /// Read from `target`'s backing window memory (see
    /// [`Window::backing_write`]).
    fn backing_read(&self, target: usize, at: usize, dst: &mut [u8]) -> Result<(), SciError> {
        match &self.shared.targets[target].0 {
            TargetMem::Shared { region, offset } => region
                .segment()
                .mem()
                .read(offset + at, dst)
                .map_err(SciError::from),
            TargetMem::Private { mem } => mem.read(at, dst).map_err(SciError::from),
        }
    }

    /// Direct-path stream to a shared target (created lazily, kept open).
    fn stream<'a>(
        streams: &'a mut [Option<PioStream>],
        shared: &WindowShared,
        rank: &Rank,
        target: usize,
        working_set: usize,
    ) -> (&'a mut PioStream, usize) {
        let TargetMem::Shared { region, offset } = &shared.targets[target].0 else {
            panic!("direct stream to private window");
        };
        let slot = &mut streams[target];
        if slot.is_none() {
            let mut stream = region
                .map(ProcId(rank.world_rank()))
                .pio_stream(working_set);
            // Window streams are long-running: sustained MPI-level puts
            // saturate at the node injection cap (the Figure 12 plateau),
            // unlike short raw bursts.
            stream.cap_demand(rank.world.fabric.params().node_injection_cap);
            *slot = Some(stream);
        }
        (slot.as_mut().expect("just created"), *offset)
    }

    fn put_inner(
        &mut self,
        rank: &mut Rank,
        target: usize,
        target_off: usize,
        data: &[u8],
    ) -> Result<(), ScimpiError> {
        self.check(target, target_off, data.len())?;
        let target_w = self.world_of(target);
        let mode = self.imode(rank);
        let start = rank.clock.now();
        if self.direct_active(target) {
            obs::inc(obs::Counter::OscPutShared);
            let (stream, base) =
                Self::stream(&mut self.streams, &self.shared, rank, target, data.len());
            let res = attrib::charged(&mut rank.clock, Bucket::Transfer, |clock| {
                stream.write(clock, base + target_off, data)
            });
            match res {
                Ok(()) => {
                    self.note_direct_success(target);
                    if mode == IntegrityMode::EndToEnd {
                        self.record_put(rank, target, target_off, data);
                    }
                    osc_span(rank, "osc.put", start, data.len(), target, "shared");
                    return Ok(());
                }
                Err(e) => self.note_direct_failure(rank, target, e)?,
            }
        }
        // Emulation (private windows, or shared targets under fallback):
        // control message + remote interrupt + handler receives the data
        // with the ordinary protocols. A failed direct write above may
        // already have moved some bytes; the handler's copy lands the full
        // payload either way.
        obs::inc(obs::Counter::OscPutEmulated);
        Self::ensure_alive(rank, target_w)?;
        if mode == IntegrityMode::EndToEnd {
            let wire = Self::deliver_packet(rank, target_w, data, "one-sided put")?;
            self.backing_write(target, target_off, &wire)?;
        } else {
            let mut wire = data.to_vec();
            let pair = (rank.node().0, rank.world.node_of(target_w).0);
            let n = Self::corrupt_wire(rank, pair, &mut wire);
            Self::note_uncovered(rank, n, "osc.put");
            self.backing_write(target, target_off, &wire)?;
        }
        self.emulate(rank, target, data.len());
        osc_span(rank, "osc.put", start, data.len(), target, "emulated");
        Ok(())
    }

    #[allow(clippy::too_many_arguments)]
    fn put_typed_inner(
        &mut self,
        rank: &mut Rank,
        target: usize,
        target_off: usize,
        c: &Committed,
        count: usize,
        buf: &[u8],
        origin: usize,
    ) -> Result<(), ScimpiError> {
        let total = c.size() * count;
        self.check(target, target_off, c.extent() * count)?;
        let target_w = self.world_of(target);
        let mode = self.imode(rank);
        let start = rank.clock.now();
        // Resolve the committed layout (cache lookup vs re-flatten), then
        // let the adaptive selector pick the pack path from its density.
        // DMA is only on offer where the descriptor-list engine can reach
        // the target: a healthy shared window.
        attrib::advance(
            &mut rank.clock,
            Bucket::Pack,
            rank.world.tuning.layout_resolve_cost(c),
        );
        // The staging budget governs the verdict: a DMA pack buffer the
        // ledger cannot cover degrades to the staged engine, and a
        // staged bounce buffer it cannot cover degrades to the
        // bufferless direct path. The lease is held for the transfer.
        let world = Arc::clone(&rank.world);
        let (path, _staging_lease) =
            world.governed_path(rank.rank, c, total, self.direct_active(target));
        if path == PackPath::Dma {
            return self.put_typed_dma_inner(rank, target, target_off, c, count, buf, origin);
        }
        if self.direct_active(target) {
            obs::inc(obs::Counter::OscPutShared);
            let (stream, base) = Self::stream(&mut self.streams, &self.shared, rank, target, total);
            // Pack into the window preserving the *layout* (the target
            // datatype equals the origin datatype here): each block is
            // written at its own displacement. With WC batching, adjacent
            // blocks coalesce in the stream's write-combining window.
            let use_wc = rank.world.tuning.wc_batching;
            let ff_block_cost = rank.world.tuning.ff_block_cost;
            let (stats, err) = attrib::charged(&mut rank.clock, Bucket::Transfer, |clock| {
                let mut err = None;
                let stats = ff::for_each_block(c, count, 0, usize::MAX, |disp, len| {
                    let src_at = (origin as i64 + disp) as usize;
                    let dst_at = base + target_off + disp as usize;
                    let data = &buf[src_at..src_at + len];
                    let res = if use_wc {
                        stream.write_batched(clock, dst_at, data)
                    } else {
                        stream.write(clock, dst_at, data)
                    };
                    match res {
                        Ok(()) => core::ops::ControlFlow::Continue(()),
                        Err(e) => {
                            err = Some(e);
                            core::ops::ControlFlow::Break(())
                        }
                    }
                });
                if err.is_none() {
                    if let Err(e) = stream.flush_wc(clock) {
                        err = Some(e);
                    }
                }
                (stats, err)
            });
            match err {
                None => {
                    attrib::advance(
                        &mut rank.clock,
                        Bucket::Pack,
                        ff_block_cost.saturating_mul(stats.blocks as u64),
                    );
                    self.note_direct_success(target);
                    if mode == IntegrityMode::EndToEnd {
                        // One epoch record per block: verification needs
                        // the layout, not the packed stream.
                        ff::for_each_block(c, count, 0, usize::MAX, |disp, len| {
                            let src_at = (origin as i64 + disp) as usize;
                            self.record_put(
                                rank,
                                target,
                                (target_off as i64 + disp) as usize,
                                &buf[src_at..src_at + len],
                            );
                            core::ops::ControlFlow::Continue(())
                        });
                    }
                    osc_span(rank, "osc.put_typed", start, total, target, "shared");
                    return Ok(());
                }
                Some(e) => self.note_direct_failure(rank, target, e)?,
            }
        }
        // Emulation (private windows, or shared targets under fallback).
        obs::inc(obs::Counter::OscPutEmulated);
        Self::ensure_alive(rank, target_w)?;
        let mut sink = ff::VecSink::default();
        let stats = ff::pack_ff(c, count, buf, origin, 0, usize::MAX, &mut sink)
            .expect("VecSink infallible");
        attrib::advance(
            &mut rank.clock,
            Bucket::Pack,
            rank.world
                .tuning
                .ff_block_cost
                .saturating_mul(stats.blocks as u64),
        );
        // The packed stream is one emulation packet on the wire.
        let mut payload = sink.data;
        if mode == IntegrityMode::EndToEnd {
            payload = Self::deliver_packet(rank, target_w, &payload, "one-sided put")?;
        } else {
            let pair = (rank.node().0, rank.world.node_of(target_w).0);
            let n = Self::corrupt_wire(rank, pair, &mut payload);
            Self::note_uncovered(rank, n, "osc.put_typed");
        }
        // Handler unpacks at the target; data keeps its layout.
        let mut err = None;
        let mut pos = 0usize;
        ff::for_each_block(c, count, 0, usize::MAX, |disp, len| {
            let at = (target_off as i64 + disp) as usize;
            if let Err(e) = self.backing_write(target, at, &payload[pos..pos + len]) {
                err = Some(e);
                return core::ops::ControlFlow::Break(());
            }
            pos += len;
            core::ops::ControlFlow::Continue(())
        });
        if let Some(e) = err {
            return Err(e.into());
        }
        self.emulate(rank, target, total);
        osc_span(rank, "osc.put_typed", start, total, target, "emulated");
        Ok(())
    }

    /// `MPI_Put` of a committed datatype through the **DMA engine's
    /// scatter/gather descriptor list** — the paper's outlook (§6):
    /// non-contiguous transfers on DMA-based interconnects pay one setup
    /// for the whole list and then stream without the CPU. Pays off for
    /// large payloads of small blocks, where PIO per-block costs dominate.
    /// Shared windows only.
    #[allow(clippy::too_many_arguments)]
    fn put_typed_dma_inner(
        &mut self,
        rank: &mut Rank,
        target: usize,
        target_off: usize,
        c: &Committed,
        count: usize,
        buf: &[u8],
        origin: usize,
    ) -> Result<(), ScimpiError> {
        self.check(target, target_off, c.extent() * count)?;
        obs::inc(obs::Counter::OscPutShared);
        let TargetMem::Shared { region, offset } = &self.shared.targets[target].0 else {
            panic!("put_typed_dma requires a shared window");
        };
        let region = Arc::clone(region);
        let base = offset + target_off;
        let mut entries = Vec::with_capacity(c.blocks_per_instance() * count);
        ff::for_each_block(c, count, 0, usize::MAX, |disp, len| {
            entries.push(sci_fabric::SgEntry {
                src_offset: (origin as i64 + disp) as usize,
                dst_offset: (base as i64 + disp) as usize,
                len,
            });
            core::ops::ControlFlow::Continue(())
        });
        let dma = rank.world.fabric.dma_engine(rank.node(), region.segment());
        let completion = attrib::charged(&mut rank.clock, Bucket::Transfer, |clock| {
            dma.write_sg(clock, &entries, buf)
        })?;
        self.emu_outstanding = self.emu_outstanding.max(completion.done);
        if self.imode(rank) == IntegrityMode::EndToEnd {
            // The DMA engine has no sequence guard; epoch verification is
            // the only net under the descriptor-list path.
            ff::for_each_block(c, count, 0, usize::MAX, |disp, len| {
                let src_at = (origin as i64 + disp) as usize;
                self.record_put(
                    rank,
                    target,
                    (target_off as i64 + disp) as usize,
                    &buf[src_at..src_at + len],
                );
                core::ops::ControlFlow::Continue(())
            });
        } else {
            Self::note_uncovered(rank, completion.silent_faults as usize, "osc.put_dma");
        }
        Ok(())
    }

    fn get_inner(
        &mut self,
        rank: &mut Rank,
        target: usize,
        target_off: usize,
        dst: &mut [u8],
    ) -> Result<(), ScimpiError> {
        self.check(target, target_off, dst.len())?;
        let target_w = self.world_of(target);
        let mode = self.imode(rank);
        let threshold = rank.world.tuning.get_remote_put_threshold;
        let start = rank.clock.now();
        if self.direct_active(target) {
            let (region, offset) = match &self.shared.targets[target].0 {
                TargetMem::Shared { region, offset } => (Arc::clone(region), *offset),
                TargetMem::Private { .. } => unreachable!("direct_active implies shared"),
            };
            if dst.len() < threshold {
                obs::inc(obs::Counter::OscGetDirect);
                // Small: direct remote read (CPU stalls, but latency is
                // still low compared to messaging).
                let reader = rank.world.fabric.pio_reader(rank.node(), region.segment());
                match Self::read_direct(
                    rank,
                    &reader,
                    offset + target_off,
                    dst,
                    target_w,
                    mode,
                    "one-sided get",
                ) {
                    Ok(()) => {
                        self.note_direct_success(target);
                        osc_span(rank, "osc.get", start, dst.len(), target, "direct");
                        return Ok(());
                    }
                    Err(ScimpiError::Fabric(e)) => self.note_direct_failure(rank, target, e)?,
                    Err(other) => return Err(other),
                }
            } else {
                obs::inc(obs::Counter::OscGetRemotePut);
                // Large: remote-put conversion — the target writes the
                // data into the origin's address space at SCI write
                // bandwidth instead of the origin reading it at SCI
                // read bandwidth (needs the target's CPU).
                Self::ensure_alive(rank, target_w)?;
                region
                    .segment()
                    .mem()
                    .read(offset + target_off, dst)
                    .map_err(SciError::from)?;
                {
                    let roundtrip = Self::handler_roundtrip_cost(rank, target_w, dst.len());
                    attrib::advance(&mut rank.clock, Bucket::Transfer, roundtrip);
                }
                let clean = dst.to_vec();
                Self::verify_return(rank, target_w, mode, dst, &clean, "one-sided get")?;
                osc_span(rank, "osc.get", start, dst.len(), target, "remote_put");
                return Ok(());
            }
        }
        // Emulation (private windows, or shared targets under fallback —
        // the remote-put conversion rides the direct path, so it is
        // disabled too): interrupt the target, handler sends the data back
        // with the ordinary protocols.
        obs::inc(obs::Counter::OscGetRemotePut);
        Self::ensure_alive(rank, target_w)?;
        self.backing_read(target, target_off, dst)?;
        let roundtrip = Self::handler_roundtrip_cost(rank, target_w, dst.len());
        attrib::advance(&mut rank.clock, Bucket::Transfer, roundtrip);
        let clean = dst.to_vec();
        Self::verify_return(rank, target_w, mode, dst, &clean, "one-sided get")?;
        osc_span(rank, "osc.get", start, dst.len(), target, "emulated");
        Ok(())
    }

    /// Cost of one target-executed data return (remote-put conversion or
    /// emulation): request + interrupt + handler + streamed write back.
    /// `target_w` is the target's world rank.
    fn handler_roundtrip_cost(rank: &Rank, target_w: usize, len: usize) -> SimDuration {
        let params = rank.world.fabric.params();
        let t = &rank.world.tuning;
        let hops = rank
            .world
            .fabric
            .topology()
            .distance(rank.node(), rank.world.smi.node_of(ProcId(target_w)));
        t.ctrl_send_cost
            + params.remote_interrupt
            + HANDLER_COST
            + params.txn_overhead
            + params
                .pio_stream_bw(len)
                .min(params.node_injection_cap)
                .cost(len as u64)
            + params.wire_latency(hops).saturating_mul(2)
            + params.cache.copy_cost(len, len)
    }

    /// Route an operation result to the surface: out-of-bounds errors are
    /// returned directly (a caller bug, not a communication fault); fabric
    /// errors go through the error-handler machinery ([`crate::ErrorMode`]).
    fn surface(rank: &Rank, res: Result<(), ScimpiError>) -> Result<(), ScimpiError> {
        res.map_err(|e| {
            if matches!(e, ScimpiError::Fabric(SciError::OutOfBounds(_))) {
                e
            } else {
                rank.world.escalate(e)
            }
        })
    }

    /// `MPI_Put` of contiguous bytes.
    pub fn put(
        &mut self,
        rank: &mut Rank,
        target: usize,
        target_off: usize,
        data: &[u8],
    ) -> Result<(), ScimpiError> {
        let res = self.put_inner(rank, target, target_off, data);
        Self::surface(rank, res)
    }

    /// `MPI_Get` of contiguous bytes.
    pub fn get(
        &mut self,
        rank: &mut Rank,
        target: usize,
        target_off: usize,
        dst: &mut [u8],
    ) -> Result<(), ScimpiError> {
        let res = self.get_inner(rank, target, target_off, dst);
        Self::surface(rank, res)
    }

    /// `MPI_Put` of a committed datatype — `direct_pack_ff` streams the
    /// blocks straight into the remote window.
    #[allow(clippy::too_many_arguments)]
    pub fn put_typed(
        &mut self,
        rank: &mut Rank,
        target: usize,
        target_off: usize,
        c: &Committed,
        count: usize,
        buf: &[u8],
        origin: usize,
    ) -> Result<(), ScimpiError> {
        let res = self.put_typed_inner(rank, target, target_off, c, count, buf, origin);
        Self::surface(rank, res)
    }

    /// `MPI_Put` of a committed datatype forced through the DMA
    /// scatter/gather descriptor list (see [`Window::put_typed`], which
    /// selects this path adaptively). Shared windows only.
    #[allow(clippy::too_many_arguments)]
    pub fn put_typed_dma(
        &mut self,
        rank: &mut Rank,
        target: usize,
        target_off: usize,
        c: &Committed,
        count: usize,
        buf: &[u8],
        origin: usize,
    ) -> Result<(), ScimpiError> {
        let res = self.put_typed_dma_inner(rank, target, target_off, c, count, buf, origin);
        Self::surface(rank, res)
    }

    /// `MPI_Put` posted nonblocking. The store is issued inline on the
    /// origin's clock (puts are posted writes: the CPU hands the data to
    /// the fabric and moves on; draining is the synchronisation call's
    /// job), so the returned [`Request`] is already complete — it exists
    /// so puts compose with [`Rank::waitall`] alongside [`Window::iget`]
    /// and point-to-point requests. See `docs/ASYNC.md`.
    pub fn iput(
        &mut self,
        rank: &mut Rank,
        target: usize,
        target_off: usize,
        data: &[u8],
    ) -> Result<Request<()>, ScimpiError> {
        let posted_at = rank.account_post()?;
        let res = self.put(rank, target, target_off, data);
        let end = rank.clock.now();
        Ok(Request::ready(rank, "iput", posted_at, end, res))
    }

    /// `MPI_Get` posted nonblocking: the transfer runs on a fork of the
    /// origin's clock, so compute issued before [`Rank::wait`] overlaps
    /// the read stalls. Returns the gathered bytes at completion.
    pub fn iget(
        &mut self,
        rank: &mut Rank,
        target: usize,
        target_off: usize,
        len: usize,
    ) -> Result<Request<Vec<u8>>, ScimpiError> {
        let posted_at = rank.account_post()?;
        let main = rank.clock.clone();
        let mut dst = vec![0u8; len];
        // The excursion below is rolled back (the transfer effectively ran
        // on a fork), so none of its time may land in the attribution
        // table; the wait/test merge accounts it as request-wait.
        let (res, end) = attrib::paused(|| {
            let res = self.get(rank, target, target_off, &mut dst).map(|()| dst);
            let end = rank.clock.now();
            (res, end)
        });
        // The transfer ran on a fork: restore the origin's compute
        // frontier; completion merges `end` back at wait/test time.
        rank.clock = main;
        Ok(Request::ready(rank, "iget", posted_at, end, res))
    }

    /// `MPI_Get` of a committed datatype: gather the target's
    /// non-contiguous blocks into the same layout at the origin.
    ///
    /// Small totals read each block directly (per-block read stalls make
    /// this expensive fast — exactly the SCI read-granularity problem);
    /// large totals convert to a remote-put executed by the target, which
    /// packs with `direct_pack_ff` on its side.
    #[allow(clippy::too_many_arguments)]
    pub fn get_typed(
        &mut self,
        rank: &mut Rank,
        target: usize,
        target_off: usize,
        c: &Committed,
        count: usize,
        buf: &mut [u8],
        origin: usize,
    ) -> Result<(), ScimpiError> {
        let res = self.get_typed_inner(rank, target, target_off, c, count, buf, origin);
        Self::surface(rank, res)
    }

    #[allow(clippy::too_many_arguments)]
    fn get_typed_inner(
        &mut self,
        rank: &mut Rank,
        target: usize,
        target_off: usize,
        c: &Committed,
        count: usize,
        buf: &mut [u8],
        origin: usize,
    ) -> Result<(), ScimpiError> {
        self.check(target, target_off, c.extent() * count)?;
        let target_w = self.world_of(target);
        let mode = self.imode(rank);
        let total = c.size() * count;
        // Unpacking at the origin resolves the same committed layout.
        attrib::advance(
            &mut rank.clock,
            Bucket::Pack,
            rank.world.tuning.layout_resolve_cost(c),
        );
        let threshold = rank.world.tuning.get_remote_put_threshold;
        if self.direct_active(target) && total < threshold {
            let (region, offset) = match &self.shared.targets[target].0 {
                TargetMem::Shared { region, offset } => (Arc::clone(region), *offset),
                TargetMem::Private { .. } => unreachable!("direct_active implies shared"),
            };
            obs::inc(obs::Counter::OscGetDirect);
            // Direct path: one stalling read per basic block. `EndToEnd`
            // re-reads the whole gather on a faulted pass (a modeled CRC
            // handshake per attempt), bounded by the retransmit budget.
            let reader = rank.world.fabric.pio_reader(rank.node(), region.segment());
            let base = (offset + target_off) as i64;
            let mut retransmits = 0u32;
            let outcome = loop {
                let (err, faults) = attrib::charged(&mut rank.clock, Bucket::Transfer, |clock| {
                    let mut err = None;
                    let mut faults = 0u64;
                    ff::for_each_block(c, count, 0, usize::MAX, |disp, len| {
                        let src = (base + disp) as usize;
                        let dst = (origin as i64 + disp) as usize;
                        match reader.read_counted(clock, src, &mut buf[dst..dst + len]) {
                            Ok(n) => {
                                faults += n;
                                core::ops::ControlFlow::Continue(())
                            }
                            Err(e) => {
                                err = Some(e);
                                core::ops::ControlFlow::Break(())
                            }
                        }
                    });
                    (err, faults)
                });
                if let Some(e) = err {
                    break Some(e);
                }
                if mode != IntegrityMode::EndToEnd {
                    Self::note_uncovered(rank, faults as usize, "osc.get_typed");
                    break None;
                }
                attrib::advance(&mut rank.clock, Bucket::Pack, rank.world.crc_cost(total));
                if faults == 0 {
                    break None;
                }
                Self::note_detected(rank, "osc.get_typed", target_w);
                if retransmits >= rank.world.tuning.max_retransmits {
                    return Err(ScimpiError::DataCorruption {
                        peer: target_w,
                        what: "one-sided get",
                        retransmits,
                    });
                }
                retransmits += 1;
                Self::note_retransmit(rank, "osc.get_typed", retransmits);
            };
            match outcome {
                None => {
                    self.note_direct_success(target);
                    return Ok(());
                }
                Some(e) => self.note_direct_failure(rank, target, e)?,
            }
        }
        obs::inc(obs::Counter::OscGetRemotePut);
        // Remote-put conversion (or emulation for private windows and
        // shared targets under fallback): the target's handler packs the
        // blocks with direct_pack_ff and streams them back at write
        // bandwidth. The packed stream is the wire image: it is gathered
        // first, checked as one return, then scattered into the origin
        // layout.
        Self::ensure_alive(rank, target_w)?;
        let base = target_off as i64;
        let mut packed = vec![0u8; total];
        let mut err = None;
        let mut pos = 0usize;
        let stats = ff::for_each_block(c, count, 0, usize::MAX, |disp, len| {
            let src = (base + disp) as usize;
            match self.backing_read(target, src, &mut packed[pos..pos + len]) {
                Ok(()) => {
                    pos += len;
                    core::ops::ControlFlow::Continue(())
                }
                Err(e) => {
                    err = Some(e);
                    core::ops::ControlFlow::Break(())
                }
            }
        });
        if let Some(e) = err {
            return Err(e.into());
        }
        let params = rank.world.fabric.params();
        let t = &rank.world.tuning;
        let hops = rank
            .world
            .fabric
            .topology()
            .distance(rank.node(), rank.world.smi.node_of(ProcId(target_w)));
        // Target-side ff pack + streamed write back + origin unpack.
        let cost = t.ctrl_send_cost
            + params.remote_interrupt
            + HANDLER_COST
            + t.ff_block_cost.saturating_mul(stats.blocks as u64)
            + params.txn_overhead
            + params
                .pio_stream_bw(total)
                .min(params.node_injection_cap)
                .cost(total as u64)
            + params.wire_latency(hops).saturating_mul(2)
            + params.cache.copy_cost(total, total);
        attrib::advance(&mut rank.clock, Bucket::Transfer, cost);
        let clean = packed.clone();
        Self::verify_return(rank, target_w, mode, &mut packed, &clean, "one-sided get")?;
        let mut pos = 0usize;
        ff::for_each_block(c, count, 0, usize::MAX, |disp, len| {
            let dst = (origin as i64 + disp) as usize;
            buf[dst..dst + len].copy_from_slice(&packed[pos..pos + len]);
            pos += len;
            core::ops::ControlFlow::Continue(())
        });
        Ok(())
    }

    /// `MPI_Accumulate`: combine `data` into the target window.
    pub fn accumulate(
        &mut self,
        rank: &mut Rank,
        target: usize,
        target_off: usize,
        op: AccumulateOp,
        data: &[u8],
    ) -> Result<(), ScimpiError> {
        let res = self.accumulate_inner(rank, target, target_off, op, data);
        Self::surface(rank, res)
    }

    fn accumulate_inner(
        &mut self,
        rank: &mut Rank,
        target: usize,
        target_off: usize,
        op: AccumulateOp,
        data: &[u8],
    ) -> Result<(), ScimpiError> {
        self.check(target, target_off, data.len())?;
        let target_w = self.world_of(target);
        let mode = self.imode(rank);
        // Read-modify-write. On the direct path this is a stalling remote
        // read plus a remote write; on the emulation path the handler does
        // the combine locally at the target.
        let mut current = vec![0u8; data.len()];
        let start = rank.clock.now();
        if self.direct_active(target) {
            let (region, offset) = match &self.shared.targets[target].0 {
                TargetMem::Shared { region, offset } => (Arc::clone(region), *offset),
                TargetMem::Private { .. } => unreachable!("direct_active implies shared"),
            };
            obs::inc(obs::Counter::OscAccShared);
            let reader = rank.world.fabric.pio_reader(rank.node(), region.segment());
            match Self::read_direct(
                rank,
                &reader,
                offset + target_off,
                &mut current,
                target_w,
                mode,
                "one-sided accumulate",
            ) {
                Ok(()) => {
                    apply_op(op, &mut current, data);
                    let (stream, base) =
                        Self::stream(&mut self.streams, &self.shared, rank, target, data.len());
                    let res = attrib::charged(&mut rank.clock, Bucket::Transfer, |clock| {
                        stream.write(clock, base + target_off, &current)
                    });
                    match res {
                        Ok(()) => {
                            self.note_direct_success(target);
                            if mode == IntegrityMode::EndToEnd {
                                // Record the *combined* image: a verify-pass
                                // rewrite then replaces rather than re-adds.
                                self.record_put(rank, target, target_off, &current);
                            }
                            osc_span(rank, "osc.accumulate", start, data.len(), target, "shared");
                            return Ok(());
                        }
                        Err(e) => self.note_direct_failure(rank, target, e)?,
                    }
                }
                Err(ScimpiError::Fabric(e)) => self.note_direct_failure(rank, target, e)?,
                Err(other) => return Err(other),
            }
        }
        obs::inc(obs::Counter::OscAccEmulated);
        Self::ensure_alive(rank, target_w)?;
        let incoming = if mode == IntegrityMode::EndToEnd {
            Self::deliver_packet(rank, target_w, data, "one-sided accumulate")?
        } else {
            let mut wire = data.to_vec();
            let pair = (rank.node().0, rank.world.node_of(target_w).0);
            let n = Self::corrupt_wire(rank, pair, &mut wire);
            Self::note_uncovered(rank, n, "osc.accumulate");
            wire
        };
        self.backing_read(target, target_off, &mut current)?;
        apply_op(op, &mut current, &incoming);
        self.backing_write(target, target_off, &current)?;
        self.emulate(rank, target, data.len());
        osc_span(
            rank,
            "osc.accumulate",
            start,
            data.len(),
            target,
            "emulated",
        );
        Ok(())
    }

    /// Read from this rank's own window memory (local load).
    pub fn read_local(&self, rank: &mut Rank, offset: usize, dst: &mut [u8]) {
        let me = self.local_index(rank);
        self.check(me, offset, dst.len())
            .expect("local read in range");
        match &self.shared.targets[me].0 {
            TargetMem::Shared {
                region,
                offset: base,
            } => {
                region
                    .segment()
                    .mem()
                    .read(base + offset, dst)
                    .expect("in range");
            }
            TargetMem::Private { mem } => {
                mem.read(offset, dst).expect("in range");
            }
        }
        let cost = rank
            .world
            .fabric
            .params()
            .cache
            .copy_cost(dst.len(), dst.len());
        attrib::advance(&mut rank.clock, Bucket::Pack, cost);
    }

    /// Write into this rank's own window memory (local store).
    pub fn write_local(&self, rank: &mut Rank, offset: usize, data: &[u8]) {
        let me = self.local_index(rank);
        self.check(me, offset, data.len())
            .expect("local write in range");
        match &self.shared.targets[me].0 {
            TargetMem::Shared {
                region,
                offset: base,
            } => {
                region
                    .segment()
                    .mem()
                    .write(base + offset, data)
                    .expect("in range");
            }
            TargetMem::Private { mem } => {
                mem.write(offset, data).expect("in range");
            }
        }
        let cost = rank
            .world
            .fabric
            .params()
            .cache
            .copy_cost(data.len(), data.len());
        attrib::advance(&mut rank.clock, Bucket::Pack, cost);
    }

    /// Model one emulation round trip (control message + remote interrupt +
    /// handler + data transfer time). Requests to one target serialise on
    /// its handler — the paper's private-window latencies are dominated by
    /// "the required signalling of the remote process and the message
    /// exchange involved" for every single call.
    fn emulate(&mut self, rank: &mut Rank, target: usize, len: usize) {
        let target_w = self.world_of(target);
        let params = rank.world.fabric.params();
        let t = &rank.world.tuning;
        let hops = rank
            .world
            .fabric
            .topology()
            .distance(rank.node(), rank.world.smi.node_of(ProcId(target_w)));
        // Origin: builds the request, pays the transfer.
        let origin_cost = t.ctrl_send_cost
            + params.txn_overhead
            + params
                .pio_stream_bw(len)
                .min(params.node_injection_cap)
                .cost(len as u64)
            + params.cache.copy_cost(len, len);
        attrib::advance(&mut rank.clock, Bucket::Transfer, origin_cost);
        // Handler at the target: starts once the request has arrived AND
        // the handler is free (serialisation), then pays the interrupt
        // dispatch plus the copy-in.
        let arrival = rank.clock.now() + params.wire_latency(hops);
        let start = arrival.max(self.emu_busy[target]);
        let done =
            start + params.remote_interrupt + HANDLER_COST + params.cache.copy_cost(len, len);
        self.emu_busy[target] = done;
        self.emu_outstanding = self.emu_outstanding.max(done);
    }

    /// Flush: merge all outstanding completions into the clock and reset
    /// burst state (the store-barrier part of every synchronisation).
    fn flush_streams(&mut self, rank: &mut Rank) {
        for stream in self.streams.iter_mut().flatten() {
            attrib::charged(&mut rank.clock, Bucket::Transfer, |clock| {
                stream.barrier(clock)
            });
        }
        // Draining the emulation handlers is waiting on remote progress,
        // the same class of stall as completing an outstanding request.
        attrib::merge_waited(
            &mut rank.clock,
            self.emu_outstanding,
            WaitKind::RequestWait,
            None,
        );
        self.emu_outstanding = SimTime::ZERO;
    }

    /// Flush with integrity handling per [`crate::IntegrityMode`]: `Off`
    /// counts silent stream faults as uncovered; `SequenceCheck` polls the
    /// adapter's sequence guard per stream (detects, never repairs);
    /// `EndToEnd` verifies the epoch ledger against the remote windows and
    /// rewrites corrupted regions within the retransmit budget.
    fn try_flush(&mut self, rank: &mut Rank) -> Result<(), ScimpiError> {
        self.flush_streams(rank);
        match self.imode(rank) {
            IntegrityMode::Off => {
                for stream in self.streams.iter_mut().flatten() {
                    let n = stream.take_silent_faults();
                    Self::note_uncovered(rank, n as usize, "osc.flush");
                }
                Ok(())
            }
            IntegrityMode::SequenceCheck => {
                let mut tainted = None;
                for (target, stream) in self.streams.iter_mut().enumerate() {
                    let Some(stream) = stream else { continue };
                    let status = attrib::charged(&mut rank.clock, Bucket::Transfer, |clock| {
                        stream.check_sequence(clock)
                    });
                    if status == SeqStatus::Tainted {
                        Self::note_detected(rank, "osc.flush", self.shared.members[target]);
                        tainted.get_or_insert(target);
                    }
                    attrib::charged(&mut rank.clock, Bucket::Transfer, |clock| {
                        stream.start_sequence(clock)
                    });
                }
                match tainted {
                    None => Ok(()),
                    Some(target) => Err(ScimpiError::DataCorruption {
                        peer: self.world_of(target),
                        what: "one-sided epoch",
                        retransmits: 0,
                    }),
                }
            }
            IntegrityMode::EndToEnd => self.verify_epoch(rank),
        }
    }

    /// `EndToEnd` epoch verification: a target-side CRC over every
    /// recorded put region is compared with the origin's record (the
    /// simulator reads the backing memory directly — in hardware the
    /// target checksums its own window and returns the digest).
    /// Mismatched regions are rewritten — re-subject to faults — within
    /// the retransmit budget.
    fn verify_epoch(&mut self, rank: &mut Rank) -> Result<(), ScimpiError> {
        // The CRC comparison supersedes per-stream fault bookkeeping.
        for stream in self.streams.iter_mut().flatten() {
            stream.take_silent_faults();
        }
        let records = std::mem::take(&mut self.put_records);
        for rec in &records {
            let mut retransmits = 0u32;
            loop {
                attrib::advance(
                    &mut rank.clock,
                    Bucket::Pack,
                    rank.world.crc_cost(rec.data.len()),
                );
                let mut image = vec![0u8; rec.data.len()];
                self.backing_read(rec.target, rec.offset, &mut image)?;
                if crc32(&image) == rec.crc {
                    break;
                }
                Self::note_detected(rank, "osc.epoch", self.world_of(rec.target));
                if retransmits >= rank.world.tuning.max_retransmits {
                    return Err(ScimpiError::DataCorruption {
                        peer: self.world_of(rec.target),
                        what: "one-sided epoch",
                        retransmits,
                    });
                }
                retransmits += 1;
                Self::note_retransmit(rank, "osc.epoch", retransmits);
                self.rewrite(rank, rec)?;
            }
        }
        Ok(())
    }

    /// Rewrite one corrupted put region — the epoch-level retransmission.
    /// The fresh write is itself subject to faults; the caller re-verifies.
    fn rewrite(&mut self, rank: &mut Rank, rec: &PutRecord) -> Result<(), ScimpiError> {
        if self.direct_active(rec.target) {
            let (stream, base) = Self::stream(
                &mut self.streams,
                &self.shared,
                rank,
                rec.target,
                rec.data.len(),
            );
            attrib::charged(&mut rank.clock, Bucket::Transfer, |clock| {
                stream.write(clock, base + rec.offset, &rec.data)
            })
            .map_err(ScimpiError::Fabric)?;
            attrib::charged(&mut rank.clock, Bucket::Transfer, |clock| {
                stream.barrier(clock)
            });
            stream.take_silent_faults();
        } else {
            Self::ensure_alive(rank, self.world_of(rec.target))?;
            let pair = (
                rank.node().0,
                rank.world.node_of(self.world_of(rec.target)).0,
            );
            let mut wire = rec.data.clone();
            Self::corrupt_wire(rank, pair, &mut wire);
            self.backing_write(rec.target, rec.offset, &wire)?;
            self.emulate(rank, rec.target, rec.data.len());
            attrib::merge_waited(
                &mut rank.clock,
                self.emu_outstanding,
                WaitKind::RequestWait,
                None,
            );
            self.emu_outstanding = SimTime::ZERO;
        }
        Ok(())
    }

    /// `MPI_Win_fence`: complete all outstanding accesses and synchronise
    /// all ranks of the window (active target, collective).
    ///
    /// The collective synchronisation itself always runs — even when this
    /// rank's flush detects corruption — so peers are not deadlocked; the
    /// error goes through the error-handler machinery after the barrier.
    /// A rank blocked in the fence while the communicator is revoked
    /// errors out with [`ScimpiError::Revoked`] at the gossip-front
    /// arrival time instead of waiting for dead members.
    pub fn fence(&mut self, rank: &mut Rank) -> Result<(), ScimpiError> {
        let res = self.try_flush(rank);
        self.maybe_repromote(rank);
        let me_w = rank.world_rank();
        let world = Arc::clone(&rank.world);
        if self
            .shared
            .fence
            .wait_cancel(&mut rank.clock, || {
                world.revoke_arrival(me_w).map(|(at, _)| at)
            })
            .is_err()
        {
            let e = world
                .check_revoked(&mut rank.clock, me_w)
                .expect("cancellation implies an installed revocation");
            return Err(world.escalate(e));
        }
        res.map_err(|e| rank.world.escalate(e))
    }

    /// At synchronisation, probe the primary route to every demoted target
    /// and re-promote the ones whose direct path has healed. Probes cost
    /// `Tuning::probe_cost` and run only for targets under fallback, so
    /// healthy runs stay bit-identical.
    fn maybe_repromote(&mut self, rank: &mut Rank) {
        for target in 0..self.fallback.len() {
            if !self.fallback[target].active {
                continue;
            }
            let TargetMem::Shared { region, .. } = &self.shared.targets[target].0 else {
                continue;
            };
            let owner = region.segment().owner();
            let primary = rank.world.fabric.topology().route(rank.node(), owner);
            let monitor =
                ConnectionMonitor::new(rank.world.fabric.faults(), rank.world.tuning.probe_cost);
            let probe = attrib::charged(&mut rank.clock, Bucket::Transfer, |clock| {
                monitor.probe(clock, owner.0, &primary)
            });
            if probe.is_ok() {
                self.fallback[target] = FallbackState::default();
                obs::inc(obs::Counter::OscRepromotions);
                if obs::is_enabled() {
                    obs::instant(
                        "ft.osc_repromote",
                        rank.clock.now(),
                        vec![("target", obs::Arg::U64(target as u64))],
                    );
                }
            }
        }
    }

    /// `MPI_Win_post`: open an exposure epoch for `origins` (active
    /// target, paired with [`Window::start`] at the origins).
    pub fn post(&mut self, rank: &mut Rank, origins: &[usize]) {
        let me_w = rank.world_rank();
        for &o in origins {
            let o_w = self.world_of(o);
            attrib::advance(
                &mut rank.clock,
                Bucket::Transfer,
                rank.world.tuning.ctrl_send_cost,
            );
            let arrival = rank.clock.now() + rank.world.ctrl_latency(me_w, o_w);
            rank.world.mailboxes[o_w].post_ctrl(
                pscw_handle(self.shared.id, me_w, o_w, 0),
                Ctrl::Signal {
                    arrival,
                    data: Vec::new(),
                },
            );
        }
    }

    /// `MPI_Win_start`: open an access epoch towards `targets` (waits
    /// for their posts). The wait is liveness- and revocation-guarded: a
    /// target dying before its post, or a communicator revocation,
    /// surfaces through the error-handler machinery instead of hanging.
    pub fn start(&mut self, rank: &mut Rank, targets: &[usize]) -> Result<(), ScimpiError> {
        let me_w = rank.world_rank();
        for &t in targets {
            let t_w = self.world_of(t);
            let c = rank
                .world
                .await_ctrl(
                    me_w,
                    &mut rank.clock,
                    pscw_handle(self.shared.id, t_w, me_w, 0),
                    t_w,
                    "post signal",
                )
                .map_err(|e| rank.world.escalate(e))?;
            let Ctrl::Signal { arrival, .. } = c else {
                panic!(
                    "{}",
                    ScimpiError::ProtocolViolation {
                        expected: "post signal",
                        got: format!("{c:?}"),
                    }
                );
            };
            // Blocked until the target's post signal lands: the peer is
            // "late" in exactly the late-sender sense.
            attrib::merge_waited(
                &mut rank.clock,
                arrival,
                WaitKind::LateSender,
                Some(t_w as u32),
            );
            attrib::advance(
                &mut rank.clock,
                Bucket::Transfer,
                rank.world.tuning.ctrl_recv_cost,
            );
        }
        Ok(())
    }

    /// `MPI_Win_complete`: close the access epoch (flushes and notifies
    /// the targets). The targets are notified even when this rank's
    /// flush detects corruption, so their [`Window::wait`] is not
    /// deadlocked; the error goes through the error-handler machinery
    /// after the notifications.
    pub fn complete(&mut self, rank: &mut Rank, targets: &[usize]) -> Result<(), ScimpiError> {
        let res = self.try_flush(rank);
        let me_w = rank.world_rank();
        for &t in targets {
            let t_w = self.world_of(t);
            attrib::advance(
                &mut rank.clock,
                Bucket::Transfer,
                rank.world.tuning.ctrl_send_cost,
            );
            let arrival = rank.clock.now() + rank.world.ctrl_latency(me_w, t_w);
            rank.world.mailboxes[t_w].post_ctrl(
                pscw_handle(self.shared.id, me_w, t_w, 1),
                Ctrl::Signal {
                    arrival,
                    data: Vec::new(),
                },
            );
        }
        res.map_err(|e| rank.world.escalate(e))
    }

    /// `MPI_Win_wait`: close the exposure epoch (waits for all origins'
    /// completes). Liveness- and revocation-guarded like
    /// [`Window::start`].
    pub fn wait(&mut self, rank: &mut Rank, origins: &[usize]) -> Result<(), ScimpiError> {
        let me_w = rank.world_rank();
        for &o in origins {
            let o_w = self.world_of(o);
            let c = rank
                .world
                .await_ctrl(
                    me_w,
                    &mut rank.clock,
                    pscw_handle(self.shared.id, o_w, me_w, 1),
                    o_w,
                    "complete signal",
                )
                .map_err(|e| rank.world.escalate(e))?;
            let Ctrl::Signal { arrival, .. } = c else {
                panic!(
                    "{}",
                    ScimpiError::ProtocolViolation {
                        expected: "complete signal",
                        got: format!("{c:?}"),
                    }
                );
            };
            // Exposure epoch held open by a slow origin's complete.
            attrib::merge_waited(
                &mut rank.clock,
                arrival,
                WaitKind::LateSender,
                Some(o_w as u32),
            );
            attrib::advance(
                &mut rank.clock,
                Bucket::Transfer,
                rank.world.tuning.ctrl_recv_cost,
            );
        }
        Ok(())
    }

    /// `MPI_Win_lock` (exclusive, passive target): acquire the
    /// shared-memory lock guarding `target`'s window part, run `body`,
    /// then unlock with completion semantics.
    ///
    /// The closure style keeps the real lock guard inside one stack frame,
    /// mirroring `MPI_Win_lock`/`MPI_Win_unlock` bracketing. The lock is
    /// always released — even when the unlock flush detects corruption —
    /// so waiting ranks are not deadlocked; the error goes through the
    /// error-handler machinery after the release.
    pub fn locked<R>(
        &mut self,
        rank: &mut Rank,
        target: usize,
        body: impl FnOnce(&mut Window, &mut Rank) -> R,
    ) -> Result<R, ScimpiError> {
        let me = ProcId(rank.world_rank());
        let shared = Arc::clone(&self.shared);
        let guard = {
            let lock = &shared.locks[target];
            lock.acquire(&mut rank.clock, me)
        };
        let result = body(self, rank);
        // Unlock semantics: all accesses of the epoch must be complete at
        // the target before the lock is released.
        let res = self.try_flush(rank);
        guard.release(&mut rank.clock);
        res.map_err(|e| rank.world.escalate(e))?;
        Ok(result)
    }
}

/// Element-wise combine for `MPI_Accumulate`.
fn apply_op(op: AccumulateOp, current: &mut [u8], incoming: &[u8]) {
    match op {
        AccumulateOp::Replace => current.copy_from_slice(incoming),
        AccumulateOp::SumF64 | AccumulateOp::MaxF64 => {
            assert!(
                current.len().is_multiple_of(8),
                "f64 accumulate needs 8-byte data"
            );
            for i in (0..current.len()).step_by(8) {
                let a = f64::from_le_bytes(current[i..i + 8].try_into().expect("8 bytes"));
                let b = f64::from_le_bytes(incoming[i..i + 8].try_into().expect("8 bytes"));
                let r = match op {
                    AccumulateOp::SumF64 => a + b,
                    AccumulateOp::MaxF64 => a.max(b),
                    _ => unreachable!(),
                };
                current[i..i + 8].copy_from_slice(&r.to_le_bytes());
            }
        }
        AccumulateOp::SumI64 => {
            assert!(
                current.len().is_multiple_of(8),
                "i64 accumulate needs 8-byte data"
            );
            for i in (0..current.len()).step_by(8) {
                let a = i64::from_le_bytes(current[i..i + 8].try_into().expect("8 bytes"));
                let b = i64::from_le_bytes(incoming[i..i + 8].try_into().expect("8 bytes"));
                current[i..i + 8].copy_from_slice(&a.wrapping_add(b).to_le_bytes());
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runtime::{run, ClusterSpec};
    use mpi_datatype::{typed, Datatype};

    fn shared_window(rank: &mut Rank, len: usize) -> Window {
        let mem = rank.alloc_mem(len).unwrap();
        rank.win_create(WinMemory::Alloc(mem)).unwrap()
    }

    #[test]
    fn put_fence_get_roundtrip_shared() {
        run(ClusterSpec::ringlet(2), |r| {
            let mut win = shared_window(r, 4096);
            if r.rank() == 0 {
                win.put(r, 1, 128, b"one-sided put").unwrap();
            }
            win.fence(r).unwrap();
            if r.rank() == 1 {
                let mut local = [0u8; 13];
                win.read_local(r, 128, &mut local);
                assert_eq!(&local, b"one-sided put");
            }
            // And a get back the other way.
            if r.rank() == 1 {
                win.write_local(r, 0, b"reply");
            }
            win.fence(r).unwrap();
            if r.rank() == 0 {
                let mut buf = [0u8; 5];
                win.get(r, 1, 0, &mut buf).unwrap();
                assert_eq!(&buf, b"reply");
            }
            win.fence(r).unwrap();
        });
    }

    #[test]
    fn private_window_uses_emulation_and_works() {
        run(ClusterSpec::ringlet(2), |r| {
            let mut win = r.win_create(WinMemory::Private(1024)).unwrap();
            assert!(!win.is_shared(0));
            if r.rank() == 0 {
                win.put(r, 1, 0, &[7u8; 256]).unwrap();
            }
            win.fence(r).unwrap();
            if r.rank() == 1 {
                let mut buf = [0u8; 256];
                win.read_local(r, 0, &mut buf);
                assert!(buf.iter().all(|&b| b == 7));
            }
            win.fence(r).unwrap();
        });
    }

    #[test]
    fn private_put_costs_more_than_shared_put() {
        let time_with = |private: bool| {
            let out = run(ClusterSpec::ringlet(2), move |r| {
                let mut win = if private {
                    r.win_create(WinMemory::Private(8192)).unwrap()
                } else {
                    shared_window(r, 8192)
                };
                win.fence(r).unwrap();
                if r.rank() == 0 {
                    for i in 0..16 {
                        win.put(r, 1, i * 256, &[1u8; 128]).unwrap();
                    }
                }
                win.fence(r).unwrap();
                r.now()
            });
            out[0]
        };
        let shared = time_with(false);
        let private = time_with(true);
        assert!(
            private.as_ps() > 2 * shared.as_ps(),
            "emulation {private:?} should cost much more than direct {shared:?}"
        );
    }

    #[test]
    fn large_get_remote_put_beats_direct_read_rate() {
        // A large get must cost far less than the pure PIO-read model
        // thanks to the remote-put conversion.
        let out = run(ClusterSpec::ringlet(2), |r| {
            let mut win = shared_window(r, 256 * 1024);
            win.fence(r).unwrap();
            let mut elapsed = SimDuration::ZERO;
            if r.rank() == 0 {
                let mut buf = vec![0u8; 128 * 1024];
                let t0 = r.now();
                win.get(r, 1, 0, &mut buf).unwrap();
                elapsed = r.now() - t0;
            }
            win.fence(r).unwrap();
            elapsed
        });
        let remote_put_time = out[0];
        // Direct read of 128 kiB at ~18 MiB/s would take ~7 ms.
        assert!(
            remote_put_time < SimDuration::from_ms(3),
            "remote-put get took {remote_put_time}"
        );
        assert!(remote_put_time > SimDuration::ZERO);
    }

    #[test]
    fn small_get_direct_read_is_low_latency() {
        let out = run(ClusterSpec::ringlet(2), |r| {
            let mut win = shared_window(r, 4096);
            if r.rank() == 1 {
                win.write_local(r, 64, &[0xEE; 8]);
            }
            win.fence(r).unwrap();
            let mut lat = SimDuration::ZERO;
            if r.rank() == 0 {
                let t0 = r.now();
                let mut b = [0u8; 8];
                win.get(r, 1, 64, &mut b).unwrap();
                lat = r.now() - t0;
                assert_eq!(b, [0xEE; 8]);
            }
            win.fence(r).unwrap();
            lat
        });
        // One stalling read transaction: a handful of microseconds.
        assert!(out[0] < SimDuration::from_us(10), "latency {}", out[0]);
    }

    #[test]
    fn accumulate_sum_f64() {
        run(ClusterSpec::ringlet(4), |r| {
            let mut win = shared_window(r, 64);
            if r.rank() == 0 {
                win.write_local(r, 0, &typed::to_bytes(&[10.0f64]));
            }
            win.fence(r).unwrap();
            // Ranks 1..4 each add their rank value, one after another
            // under lock (concurrent accumulates to the same location
            // need mutual exclusion in this implementation).
            for turn in 1..r.size() {
                if r.rank() == turn {
                    let data = typed::to_bytes(&[r.rank() as f64]);
                    win.locked(r, 0, |w, r| {
                        w.accumulate(r, 0, 0, AccumulateOp::SumF64, &data).unwrap();
                    })
                    .unwrap();
                }
                win.fence(r).unwrap();
            }
            if r.rank() == 0 {
                let mut buf = [0u8; 8];
                win.read_local(r, 0, &mut buf);
                let v: Vec<f64> = typed::from_bytes(&buf);
                assert_eq!(v[0], 16.0); // 10 + 1 + 2 + 3
            }
        });
    }

    #[test]
    fn pscw_epoch_synchronises() {
        run(ClusterSpec::ringlet(3), |r| {
            let mut win = shared_window(r, 1024);
            // Rank 0 is the target; ranks 1 and 2 write disjoint areas.
            if r.rank() == 0 {
                win.post(r, &[1, 2]);
                win.wait(r, &[1, 2]).unwrap();
                let mut buf = [0u8; 2];
                win.read_local(r, 100, &mut buf[..1]);
                win.read_local(r, 200, &mut buf[1..]);
                assert_eq!(buf, [11, 22]);
            } else {
                win.start(r, &[0]).unwrap();
                let v = if r.rank() == 1 { [11u8] } else { [22u8] };
                let off = if r.rank() == 1 { 100 } else { 200 };
                win.put(r, 0, off, &v).unwrap();
                win.complete(r, &[0]).unwrap();
            }
        });
    }

    #[test]
    fn lock_unlock_passive_target() {
        run(ClusterSpec::ringlet(2), |r| {
            let mut win = shared_window(r, 64);
            win.fence(r).unwrap();
            if r.rank() == 0 {
                // Passive target: rank 1 takes no action at all.
                win.locked(r, 1, |w, r| {
                    w.put(r, 1, 0, &[42u8; 16]).unwrap();
                })
                .unwrap();
                r.send(1, 1, b"done").unwrap();
            } else {
                let mut sig = [0u8; 4];
                r.recv(crate::Source::Rank(0), crate::TagSel::Value(1), &mut sig)
                    .unwrap();
                let mut buf = [0u8; 16];
                win.read_local(r, 0, &mut buf);
                assert!(buf.iter().all(|&b| b == 42));
            }
            win.fence(r).unwrap();
        });
    }

    #[test]
    fn typed_put_places_strided_blocks() {
        run(ClusterSpec::ringlet(2), |r| {
            let dt = Datatype::vector(4, 1, 2, &Datatype::double());
            let c = Committed::commit(&dt);
            let mut win = shared_window(r, 256);
            if r.rank() == 0 {
                let src: Vec<u8> = (0..c.extent()).map(|i| i as u8).collect();
                win.put_typed(r, 1, 0, &c, 1, &src, 0).unwrap();
            }
            win.fence(r).unwrap();
            if r.rank() == 1 {
                // Extent is 3 full strides + one final block (no trailing
                // gap): 56 bytes.
                assert_eq!(c.extent(), 56);
                let mut buf = vec![0u8; c.extent()];
                win.read_local(r, 0, &mut buf);
                // Block bytes landed, gap bytes untouched (zero).
                for blk in 0..4 {
                    let at = blk * 16;
                    let expect: Vec<u8> = (at..at + 8).map(|i| i as u8).collect();
                    assert_eq!(&buf[at..at + 8], &expect[..], "block {blk}");
                    if blk < 3 {
                        assert!(buf[at + 8..at + 16].iter().all(|&b| b == 0), "gap {blk}");
                    }
                }
            }
            win.fence(r).unwrap();
        });
    }

    #[test]
    fn out_of_range_access_is_error() {
        run(ClusterSpec::ringlet(2), |r| {
            let mut win = shared_window(r, 64);
            if r.rank() == 0 {
                assert!(win.put(r, 1, 60, &[0u8; 8]).is_err());
                let mut buf = [0u8; 8];
                assert!(win.get(r, 1, 60, &mut buf).is_err());
            }
            win.fence(r).unwrap();
        });
    }

    #[test]
    fn alloc_mem_pool_alloc_free_cycle() {
        run(ClusterSpec::ringlet(1), |r| {
            let a = r.alloc_mem(1024).unwrap();
            let b = r.alloc_mem(2048).unwrap();
            assert_ne!(a.offset, b.offset);
            r.free_mem(a);
            let c = r.alloc_mem(512).unwrap();
            // First-fit reuses the freed block.
            assert_eq!(c.offset, 0);
            r.free_mem(b);
            r.free_mem(c);
        });
    }

    #[test]
    fn get_typed_gathers_strided_blocks() {
        run(ClusterSpec::ringlet(2), |r| {
            let dt = Datatype::vector(8, 2, 4, &Datatype::double()); // 128 B data
            let c = Committed::commit(&dt);
            let mut win = shared_window(r, 1024);
            if r.rank() == 1 {
                let img: Vec<u8> = (0..c.extent()).map(|i| (i ^ 0x3C) as u8).collect();
                win.write_local(r, 0, &img);
            }
            win.fence(r).unwrap();
            if r.rank() == 0 {
                let mut buf = vec![0u8; c.extent()];
                win.get_typed(r, 1, 0, &c, 1, &mut buf, 0).unwrap();
                // Block bytes match the target image; gaps stayed zero.
                mpi_datatype::tree::for_each_segment(c.datatype(), 1, |d, l| {
                    let d = d as usize;
                    for (i, b) in buf.iter().enumerate().skip(d).take(l) {
                        assert_eq!(*b, (i ^ 0x3C) as u8, "data byte {i}");
                    }
                    core::ops::ControlFlow::Continue(())
                });
            }
            win.fence(r).unwrap();
        });
    }

    #[test]
    fn get_typed_large_uses_remote_put_rate() {
        // A large typed get must be far cheaper than per-block stalling
        // reads.
        let out = run(ClusterSpec::ringlet(2), |r| {
            let dt = Datatype::vector(4096, 2, 4, &Datatype::double()); // 64 KiB
            let c = Committed::commit(&dt);
            let mut win = shared_window(r, 2 * c.extent());
            win.fence(r).unwrap();
            let mut elapsed = SimDuration::ZERO;
            if r.rank() == 0 {
                let mut buf = vec![0u8; c.extent()];
                let t0 = r.now();
                win.get_typed(r, 1, 0, &c, 1, &mut buf, 0).unwrap();
                elapsed = r.now() - t0;
            }
            win.fence(r).unwrap();
            elapsed
        });
        // 4096 stalling reads would cost ~14 ms; remote-put stays ~1 ms.
        assert!(out[0] < SimDuration::from_ms(3), "took {}", out[0]);
    }

    #[test]
    fn dma_sg_put_beats_pio_for_many_small_blocks() {
        let time_with = |dma: bool| {
            // The DMA arm runs under `Auto`: put_typed's adaptive selector
            // sees a large, fine-grained layout on a shared window and
            // converts to the descriptor-list path end-to-end. The PIO arm
            // pins direct per-block ff so the comparison stays honest.
            let tuning = if dma {
                crate::tuning::Tuning::default()
            } else {
                crate::tuning::Tuning::default().full_ff_comparison()
            };
            let out = run(ClusterSpec::ringlet(2).tuning(tuning), move |r| {
                // 512 KiB of 64-byte blocks: PIO pays per-block flushes,
                // DMA pays one descriptor-list setup.
                let dt = Datatype::vector(8192, 8, 16, &Datatype::double());
                let c = Committed::commit(&dt);
                let mut win = shared_window(r, c.extent() + 64);
                win.fence(r).unwrap();
                if r.rank() == 0 {
                    let src = vec![5u8; c.extent()];
                    win.put_typed(r, 1, 0, &c, 1, &src, 0).unwrap();
                }
                win.fence(r).unwrap();
                r.now()
            });
            out[0]
        };
        let pio = time_with(false);
        let dma = time_with(true);
        assert!(dma < pio, "dma {dma:?} should beat pio {pio:?} here");
    }

    #[test]
    fn dma_sg_put_delivers_correct_layout() {
        run(ClusterSpec::ringlet(2), |r| {
            let dt = Datatype::vector(4, 1, 2, &Datatype::double());
            let c = Committed::commit(&dt);
            let mut win = shared_window(r, 256);
            if r.rank() == 0 {
                let src: Vec<u8> = (0..c.extent()).map(|i| i as u8 + 1).collect();
                win.put_typed_dma(r, 1, 0, &c, 1, &src, 0).unwrap();
            }
            win.fence(r).unwrap();
            if r.rank() == 1 {
                let mut buf = vec![0u8; c.extent()];
                win.read_local(r, 0, &mut buf);
                for blk in 0..4usize {
                    let at = blk * 16;
                    assert!(buf[at..at + 8]
                        .iter()
                        .enumerate()
                        .all(|(i, &b)| b == (at + i) as u8 + 1));
                }
            }
            win.fence(r).unwrap();
        });
    }

    #[test]
    fn iput_iget_roundtrip_with_overlap() {
        run(ClusterSpec::ringlet(2), |r| {
            let mut win = shared_window(r, 4096);
            if r.rank() == 0 {
                let mut req = win.iput(r, 1, 0, &[9u8; 64]).unwrap();
                r.wait(&mut req).unwrap();
            }
            win.fence(r).unwrap();
            if r.rank() == 1 {
                let mut buf = [0u8; 64];
                win.read_local(r, 0, &mut buf);
                assert!(buf.iter().all(|&b| b == 9));
            }
            win.fence(r).unwrap();
            if r.rank() == 0 {
                let mut req = win.iget(r, 1, 0, 64).unwrap();
                let t0 = r.now();
                r.compute(SimDuration::from_ms(5));
                let got = r.wait(&mut req).unwrap();
                assert!(got.iter().all(|&b| b == 9));
                // The read stalls hid entirely behind the compute block.
                assert_eq!(r.now() - t0, SimDuration::from_ms(5));
            }
            win.fence(r).unwrap();
        });
    }

    #[test]
    fn strided_put_performance_depends_on_alignment() {
        // §4.3: strides that are multiples of the 32-byte write-combine
        // buffer are much faster than misaligned ones.
        let time_with_stride = |stride: usize| {
            let out = run(ClusterSpec::ringlet(2), move |r| {
                let mut win = shared_window(r, 1 << 20);
                win.fence(r).unwrap();
                if r.rank() == 0 {
                    let data = [1u8; 8];
                    let mut off = 0;
                    while off + 8 <= (1 << 20) {
                        win.put(r, 1, off, &data).unwrap();
                        off += stride;
                    }
                }
                win.fence(r).unwrap();
                r.now()
            });
            out[0]
        };
        let aligned = time_with_stride(64);
        let misaligned = time_with_stride(72); // not a multiple of 32
                                               // Same number of puts is not equal (16384 vs 14563), so compare
                                               // per-put cost.
        let per_aligned = aligned.as_ps() / (1 << 20) * 64;
        let per_mis = misaligned.as_ps() / (1 << 20) * 72;
        assert!(
            per_mis > 2 * per_aligned,
            "aligned {per_aligned} vs misaligned {per_mis}"
        );
    }
}
