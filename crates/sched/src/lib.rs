//! # sched — deterministic discrete-event task scheduler
//!
//! Replaces free-running thread-per-rank execution with a **cooperative
//! virtual-time scheduler**: every rank (and every request-engine worker)
//! is a *task* backed by an OS thread, but exactly one task holds the
//! **run token** at any moment. A task keeps the token until it reaches a
//! blocking site (mailbox match, ring-slot acquisition, barrier, lock,
//! request wait, backpressure stall) and parks; parking hands the token to
//! the runnable task with the smallest `(virtual time, rank, sequence)`
//! key. Dispatch order is therefore a pure function of the simulation
//! state — same seed, same interleaving, bit for bit — and wall-clock
//! cost per rank is one parked thread, not one spinning poll loop.
//!
//! The protocol code stays *scheduler-agnostic*: blocking primitives call
//! [`is_event_task`] and either park here (event backend) or fall through
//! to their existing `Condvar` timeout loop (thread backend). Producers
//! call [`WaitQueue::wake_all`] next to their existing `notify_all`; on
//! the thread backend the queue is empty and the call is a no-op.
//!
//! ## Ordering and tie-break
//!
//! The ready queue is a min-heap over `(SimTime, rank, seq, task-id)`:
//! earliest virtual time first, then lowest rank, then creation sequence
//! number (so a rank's request-engine tasks dispatch in post order).
//! A task parks *at* its current virtual time; primitives with no
//! timestamp of their own (turn tickets, task joins) park at the task's
//! last recorded time, which keeps the key deterministic.
//!
//! ## Stalls — virtual-time liveness
//!
//! The thread backend discovers rank death, revocation, and lost grants
//! by letting its condvar waits time out every `POLL_SLICE` of *real*
//! time. The event backend has no real time, so when every live task is
//! blocked and nothing is in flight the scheduler runs a **stall round**:
//! all blocked tasks wake with [`Wake::Stalled`] and re-check liveness
//! (dead peer? revoked epoch? cancelled barrier?) exactly as a timed-out
//! wait would. Progress is counted (unparks, adoptions, retirements);
//! consecutive stall rounds without progress mean a genuine deadlock and
//! panic with a task-table dump instead of hanging CI.
//!
//! See `docs/SCHEDULER.md` for the full model.

use simclock::SimTime;
use std::any::Any;
use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::panic::panic_any;
use std::sync::{Arc, Condvar, Mutex, MutexGuard};

/// Sentinel panic payload used to unwind tasks after another task has
/// aborted the run. Wrappers around task bodies treat it as "shut down
/// quietly"; the first *real* panic is stored and re-thrown by the
/// launcher. Taking the run down is the abort's job, not every task's.
#[derive(Debug, Clone, Copy)]
pub struct Aborted;

/// Why a parked task resumed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Wake {
    /// A producer woke this task; its condition may now hold.
    Woken,
    /// Scheduler stall round: nothing else can run. Re-check liveness
    /// (dead peers, revocation, cancellation) and park again.
    Stalled,
}

/// Identifies a task within its [`Scheduler`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TaskId(usize);

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Status {
    /// Created but its thread has not adopted it yet.
    Created,
    /// In the ready heap awaiting dispatch.
    Ready,
    /// Holds the run token.
    Running,
    /// Parked at a blocking site.
    Blocked,
    /// Finished.
    Exited,
}

struct Task {
    rank: u32,
    seq: u64,
    /// Virtual time of the last park — the heap key's primary component.
    time: SimTime,
    status: Status,
    /// A wake arrived while the task was not parked; the next park
    /// returns immediately instead of blocking (no lost wakeups).
    pending_wake: bool,
    /// The pending dispatch is a stall round, not a producer wake.
    stalled: bool,
    root: bool,
    /// Per-task condvar (all waiting on the scheduler mutex) so a grant
    /// wakes exactly one thread instead of storming all 10k of them.
    cv: Arc<Condvar>,
    /// Tasks parked in `join` on this task's exit.
    exit_waiters: Vec<usize>,
}

struct Inner {
    tasks: Vec<Task>,
    /// Min-heap of runnable tasks keyed `(time, rank, seq, id)`.
    ready: BinaryHeap<Reverse<(SimTime, u32, u64, usize)>>,
    /// The task currently holding the run token, if any.
    running: Option<usize>,
    /// Root tasks created but not yet adopted; dispatch is gated until
    /// every root has checked in so the first grant is deterministic.
    gate: usize,
    /// Dynamically created tasks not yet adopted by their thread.
    /// Dispatch *waits* while this is non-zero: a freshly spawned task
    /// must be in the heap before the next pop, or adoption timing
    /// (real time!) would leak into dispatch order.
    incoming: usize,
    blocked: usize,
    live: usize,
    next_seq: u64,
    /// Unparks + adoptions + retirements — the progress measure that
    /// separates productive stall rounds from deadlock.
    progress: u64,
    progress_at_stall: u64,
    barren_stalls: u32,
    aborted: bool,
    stats: Stats,
}

/// Scheduler run statistics, for benches and the megascale smoke test.
#[derive(Debug, Clone, Copy, Default)]
pub struct Stats {
    /// Total park/dispatch events processed.
    pub events: u64,
    /// High-water mark of the ready heap (memory-boundedness proxy).
    pub ready_high_water: usize,
    /// Peak number of simultaneously live tasks.
    pub tasks_high_water: usize,
    /// Stall rounds run (deterministic liveness sweeps).
    pub stalls: u64,
}

/// A deterministic cooperative scheduler over OS-thread-backed tasks.
pub struct Scheduler {
    inner: Mutex<Inner>,
    /// Signalled on adoption; dispatchers wait here while `incoming > 0`.
    adopt_cv: Condvar,
    /// First non-[`Aborted`] panic payload, re-thrown by the launcher.
    first_panic: Mutex<Option<Box<dyn Any + Send + 'static>>>,
}

// Scheduler-internal locks tolerate poisoning: a panicking task unwinds
// through park/retire and the launcher still needs the lock to tear the
// run down and re-throw the stored panic.
fn relock<T>(r: Result<T, std::sync::PoisonError<T>>) -> T {
    r.unwrap_or_else(std::sync::PoisonError::into_inner)
}

impl Scheduler {
    /// A scheduler expecting `roots` root tasks (one per rank). Dispatch
    /// opens once all roots have been adopted.
    pub fn new(roots: usize) -> Arc<Self> {
        Arc::new(Scheduler {
            inner: Mutex::new(Inner {
                tasks: Vec::with_capacity(roots),
                ready: BinaryHeap::with_capacity(roots),
                running: None,
                gate: roots,
                incoming: 0,
                blocked: 0,
                live: 0,
                next_seq: 0,
                progress: 0,
                progress_at_stall: 0,
                barren_stalls: 0,
                aborted: false,
                stats: Stats::default(),
            }),
            adopt_cv: Condvar::new(),
            first_panic: Mutex::new(None),
        })
    }

    fn lock(&self) -> MutexGuard<'_, Inner> {
        relock(self.inner.lock())
    }

    /// Create a root task for `rank` starting at virtual time zero.
    /// Called by the launcher before spawning the rank's thread; the
    /// thread itself must [`Handle::adopt`] the returned handle.
    pub fn create_root(self: &Arc<Self>, rank: u32) -> Handle {
        let mut g = self.lock();
        let id = Self::create_in(&mut g, rank, SimTime::ZERO, true);
        Handle {
            sched: Arc::clone(self),
            id,
        }
    }

    /// Create a dynamic task (request engine, sendrecv fork) starting at
    /// `time`. The creating task keeps running; dispatch will not pop the
    /// heap again until the new task's thread has adopted it.
    pub fn create_task(self: &Arc<Self>, rank: u32, time: SimTime) -> Handle {
        let mut g = self.lock();
        g.incoming += 1;
        let id = Self::create_in(&mut g, rank, time, false);
        Handle {
            sched: Arc::clone(self),
            id,
        }
    }

    fn create_in(g: &mut Inner, rank: u32, time: SimTime, root: bool) -> TaskId {
        let seq = g.next_seq;
        g.next_seq += 1;
        g.tasks.push(Task {
            rank,
            seq,
            time,
            status: Status::Created,
            pending_wake: false,
            stalled: false,
            root,
            cv: Arc::new(Condvar::new()),
            exit_waiters: Vec::new(),
        });
        g.live += 1;
        g.stats.tasks_high_water = g.stats.tasks_high_water.max(g.live);
        TaskId(g.tasks.len() - 1)
    }

    /// Abort the run: store the first real panic payload and wake every
    /// task so it unwinds with the [`Aborted`] sentinel.
    pub fn abort_with(&self, payload: Box<dyn Any + Send + 'static>) {
        {
            let mut fp = relock(self.first_panic.lock());
            if fp.is_none() && !payload.is::<Aborted>() {
                *fp = Some(payload);
            }
        }
        let mut g = self.lock();
        if g.aborted {
            return;
        }
        g.aborted = true;
        for t in &g.tasks {
            t.cv.notify_all();
        }
        self.adopt_cv.notify_all();
    }

    /// The stored first panic, if any task aborted. The launcher resumes
    /// unwinding with it after joining all task threads.
    pub fn take_panic(&self) -> Option<Box<dyn Any + Send + 'static>> {
        relock(self.first_panic.lock()).take()
    }

    /// Run statistics so far.
    pub fn stats(&self) -> Stats {
        let g = self.lock();
        g.stats
    }

    /// Wake `task` if it is parked; remember the wake otherwise.
    /// Callable from any thread (producers hold no scheduler state).
    pub fn unpark(&self, task: TaskId) {
        let mut g = self.lock();
        Self::unpark_in(&mut g, task.0);
    }

    fn unpark_in(g: &mut Inner, id: usize) {
        match g.tasks[id].status {
            Status::Blocked => {
                g.tasks[id].status = Status::Ready;
                g.tasks[id].stalled = false;
                g.blocked -= 1;
                g.progress += 1;
                let key = (g.tasks[id].time, g.tasks[id].rank, g.tasks[id].seq, id);
                g.ready.push(Reverse(key));
                g.stats.ready_high_water = g.stats.ready_high_water.max(g.ready.len());
            }
            Status::Ready => {
                if g.tasks[id].stalled {
                    // Upgrade a stall round to a real wake.
                    g.tasks[id].stalled = false;
                    g.progress += 1;
                } else {
                    g.tasks[id].pending_wake = true;
                }
            }
            Status::Running | Status::Created => g.tasks[id].pending_wake = true,
            Status::Exited => {}
        }
    }

    /// Hand the run token to the best ready task. Called with no task
    /// running; returns once a grant happened, the run aborted, or no
    /// live task remains. Blocks (deterministically) while spawned tasks
    /// have not yet been adopted.
    fn dispatch<'a>(&'a self, mut g: MutexGuard<'a, Inner>) -> MutexGuard<'a, Inner> {
        debug_assert!(g.running.is_none());
        loop {
            if g.aborted || g.gate > 0 || g.live == 0 {
                return g;
            }
            if g.incoming > 0 {
                g = relock(self.adopt_cv.wait(g));
                continue;
            }
            if let Some(Reverse((_, _, _, id))) = g.ready.pop() {
                debug_assert_eq!(g.tasks[id].status, Status::Ready);
                g.tasks[id].status = Status::Running;
                g.running = Some(id);
                g.tasks[id].cv.notify_all();
                return g;
            }
            // Ready heap empty, nothing incoming, nothing running, yet
            // live tasks exist: everyone is blocked. Stall round.
            self.stall_round(&mut g);
        }
    }

    fn stall_round(&self, g: &mut Inner) {
        if g.stats.stalls > 0 && g.progress == g.progress_at_stall {
            g.barren_stalls += 1;
            if g.barren_stalls >= 2 {
                let dump = Self::render_tasks(g);
                panic!(
                    "event scheduler deadlock: every live task is blocked and \
                     {} consecutive stall rounds made no progress\n{dump}",
                    g.barren_stalls
                );
            }
        } else {
            g.barren_stalls = 0;
        }
        g.stats.stalls += 1;
        g.progress_at_stall = g.progress;
        for id in 0..g.tasks.len() {
            if g.tasks[id].status == Status::Blocked {
                g.tasks[id].status = Status::Ready;
                g.tasks[id].stalled = true;
                g.blocked -= 1;
                let key = (g.tasks[id].time, g.tasks[id].rank, g.tasks[id].seq, id);
                g.ready.push(Reverse(key));
            }
        }
        g.stats.ready_high_water = g.stats.ready_high_water.max(g.ready.len());
    }

    fn render_tasks(g: &Inner) -> String {
        use std::fmt::Write as _;
        let mut out = String::from("task table (first 64):\n");
        for (id, t) in g.tasks.iter().enumerate().take(64) {
            let _ = writeln!(
                out,
                "  #{id} rank={} seq={} {:?} t={:?}{}",
                t.rank,
                t.seq,
                t.status,
                t.time,
                if t.root { " root" } else { "" }
            );
        }
        if g.tasks.len() > 64 {
            let _ = writeln!(out, "  … {} more", g.tasks.len() - 64);
        }
        out
    }

    /// Park body shared by `park`, `join` and adoption: caller has set up
    /// the task's blocked/ready state; waits until granted the run token.
    fn wait_for_grant<'a>(
        &'a self,
        mut g: MutexGuard<'a, Inner>,
        me: usize,
    ) -> (MutexGuard<'a, Inner>, Wake) {
        let cv = Arc::clone(&g.tasks[me].cv);
        loop {
            if g.aborted {
                drop(g);
                panic_any(Aborted);
            }
            if g.tasks[me].status == Status::Running {
                let stalled = std::mem::take(&mut g.tasks[me].stalled);
                let wake = if stalled { Wake::Stalled } else { Wake::Woken };
                return (g, wake);
            }
            g = relock(cv.wait(g));
        }
    }

    /// Park the current task (`me`) at virtual time `now` (or its last
    /// recorded time if `None`) and hand the token over. Returns when the
    /// task is granted the token again.
    fn park_task(&self, me: usize, now: Option<SimTime>) -> Wake {
        let mut g = self.lock();
        g.stats.events += 1;
        debug_assert_eq!(g.running, Some(me));
        if g.aborted {
            drop(g);
            panic_any(Aborted);
        }
        if let Some(now) = now {
            g.tasks[me].time = now;
        }
        if std::mem::take(&mut g.tasks[me].pending_wake) {
            return Wake::Woken;
        }
        g.tasks[me].status = Status::Blocked;
        g.tasks[me].stalled = false;
        g.blocked += 1;
        g.running = None;
        g = self.dispatch(g);
        let (_g, wake) = self.wait_for_grant(g, me);
        wake
    }

    /// Retire the current task (`me`): mark it exited, wake joiners,
    /// dispatch a successor. The task's thread must not touch the
    /// scheduler afterwards.
    fn retire_task(&self, me: usize) {
        let mut g = self.lock();
        g.stats.events += 1;
        g.tasks[me].status = Status::Exited;
        g.live -= 1;
        g.progress += 1;
        let waiters = std::mem::take(&mut g.tasks[me].exit_waiters);
        for w in waiters {
            Self::unpark_in(&mut g, w);
        }
        if g.running == Some(me) {
            g.running = None;
            let _g = self.dispatch(g);
        }
    }

    /// Block the current task (`me`) until `target` exits.
    fn join_task_inner(&self, me: usize, target: usize) {
        loop {
            let mut g = self.lock();
            if g.aborted {
                drop(g);
                panic_any(Aborted);
            }
            if g.tasks[target].status == Status::Exited {
                return;
            }
            if !g.tasks[target].exit_waiters.contains(&me) {
                g.tasks[target].exit_waiters.push(me);
            }
            g.stats.events += 1;
            debug_assert_eq!(g.running, Some(me));
            if std::mem::take(&mut g.tasks[me].pending_wake) {
                continue;
            }
            g.tasks[me].status = Status::Blocked;
            g.tasks[me].stalled = false;
            g.blocked += 1;
            g.running = None;
            g = self.dispatch(g);
            let (_g, _wake) = self.wait_for_grant(g, me);
            // Re-check the target (stall rounds wake joiners too).
        }
    }

    /// Adopt `id` on the calling thread: register it with the scheduler,
    /// install the thread-local handle, and wait for the first grant.
    fn adopt_task(self: &Arc<Self>, id: usize) {
        let mut g = self.lock();
        debug_assert_eq!(g.tasks[id].status, Status::Created);
        g.tasks[id].status = Status::Ready;
        let key = (g.tasks[id].time, g.tasks[id].rank, g.tasks[id].seq, id);
        g.ready.push(Reverse(key));
        g.stats.ready_high_water = g.stats.ready_high_water.max(g.ready.len());
        if g.tasks[id].root {
            g.gate -= 1;
            if g.gate == 0 {
                // Last root opens the gate and runs the first dispatch.
                debug_assert!(g.running.is_none());
                g = self.dispatch(g);
            }
        } else {
            g.incoming -= 1;
            g.progress += 1;
            self.adopt_cv.notify_all();
        }
        let (_g, _wake) = self.wait_for_grant(g, id);
    }
}

/// A reference to one task of one scheduler — cloneable, sendable, and
/// the registration unit of [`WaitQueue`].
#[derive(Clone)]
pub struct Handle {
    sched: Arc<Scheduler>,
    id: TaskId,
}

impl Handle {
    /// This task's id.
    pub fn id(&self) -> TaskId {
        self.id
    }

    /// The scheduler owning this task.
    pub fn scheduler(&self) -> &Arc<Scheduler> {
        &self.sched
    }

    /// Bind this task to the calling thread and block until it is first
    /// granted the run token. From then on the thread runs under the
    /// scheduler until [`retire`].
    pub fn adopt(&self) {
        CURRENT.with(|c| {
            debug_assert!(c.borrow().is_none(), "thread already runs a task");
            *c.borrow_mut() = Some(self.clone());
        });
        self.sched.adopt_task(self.id.0);
    }

    /// Wake this task if parked (remembering the wake otherwise).
    pub fn unpark(&self) {
        self.sched.unpark(self.id);
    }

    fn same_task(&self, other: &Handle) -> bool {
        self.id == other.id && Arc::ptr_eq(&self.sched, &other.sched)
    }
}

impl std::fmt::Debug for Handle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Handle").field("id", &self.id).finish()
    }
}

thread_local! {
    static CURRENT: std::cell::RefCell<Option<Handle>> = const { std::cell::RefCell::new(None) };
}

/// The current thread's task handle, if it runs under a scheduler.
pub fn current() -> Option<Handle> {
    CURRENT.with(|c| c.borrow().clone())
}

/// Whether the current thread is an event-scheduler task. Blocking
/// primitives branch on this: park here vs the thread backend's condvar
/// timeout loop.
pub fn is_event_task() -> bool {
    CURRENT.with(|c| c.borrow().is_some())
}

/// Park the current task at virtual time `now`. Panics (by design) if
/// the thread is not a task — callers must check [`is_event_task`].
pub fn park(now: SimTime) -> Wake {
    let h = current().expect("sched::park outside a task");
    h.sched.park_task(h.id.0, Some(now))
}

/// Park at the task's last recorded virtual time — for blocking sites
/// with no timestamp of their own (turn tickets, joins), keeping the
/// dispatch key deterministic.
pub fn park_stale() -> Wake {
    let h = current().expect("sched::park_stale outside a task");
    h.sched.park_task(h.id.0, None)
}

/// Retire the current task and clear the thread-local binding. The
/// thread may outlive the task (e.g. to return a value) but must not
/// call back into the scheduler.
pub fn retire() {
    let h = CURRENT.with(|c| c.borrow_mut().take());
    if let Some(h) = h {
        h.sched.retire_task(h.id.0);
    }
}

/// Spawn a dynamic task for `rank` starting at `time` under the current
/// task's scheduler. Returns `None` on a non-task thread (thread
/// backend). The returned handle must be [`Handle::adopt`]ed by the new
/// task's thread before the simulation can advance.
pub fn spawn_handle(rank: u32, time: SimTime) -> Option<Handle> {
    current().map(|h| h.sched.create_task(rank, time))
}

/// Block the current task until `target` retires. No-op (falls through
/// to the caller's real `JoinHandle::join`) when the current thread is
/// not a task of the same scheduler.
pub fn join_task(target: &Handle) {
    if let Some(me) = current() {
        if Arc::ptr_eq(&me.sched, &target.sched) {
            me.sched.join_task_inner(me.id.0, target.id.0);
        }
    }
}

/// Abort the current task's run with `payload` (stored as the run's
/// first panic unless it is the [`Aborted`] sentinel). No-op outside a
/// task.
pub fn abort_current(payload: Box<dyn Any + Send + 'static>) {
    if let Some(h) = current() {
        h.sched.abort_with(payload);
    }
}

/// A list of parked tasks waiting on one condition — the event-backend
/// twin of a `Condvar`. Consumers register *before* re-checking their
/// condition and park while still holding the run token (producers are
/// tasks too, so no wake can slip between check and park); producers
/// `wake_all` right after their `notify_all`. Empty (and nearly free) on
/// the thread backend.
#[derive(Default)]
pub struct WaitQueue {
    waiters: Mutex<Vec<Handle>>,
}

impl WaitQueue {
    /// A fresh, empty queue.
    pub const fn new() -> Self {
        WaitQueue {
            waiters: Mutex::new(Vec::new()),
        }
    }

    /// Register the current task (if any); duplicates are ignored, so
    /// re-registering on every loop iteration is fine.
    pub fn register_current(&self) {
        if let Some(h) = current() {
            let mut w = relock(self.waiters.lock());
            if !w.iter().any(|x| x.same_task(&h)) {
                w.push(h);
            }
        }
    }

    /// Wake every registered task and clear the queue.
    pub fn wake_all(&self) {
        let drained = {
            let mut w = relock(self.waiters.lock());
            if w.is_empty() {
                return;
            }
            std::mem::take(&mut *w)
        };
        for h in drained {
            h.unpark();
        }
    }
}

impl std::fmt::Debug for WaitQueue {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let n = relock(self.waiters.lock()).len();
        f.debug_struct("WaitQueue").field("waiters", &n).finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simclock::SimDuration;
    use std::sync::atomic::{AtomicUsize, Ordering};

    /// Run `bodies` as root tasks under one scheduler; returns stats.
    fn run_tasks(bodies: Vec<Box<dyn FnOnce() + Send>>) -> Stats {
        let sched = Scheduler::new(bodies.len());
        let handles: Vec<Handle> = (0..bodies.len())
            .map(|i| sched.create_root(i as u32))
            .collect();
        std::thread::scope(|s| {
            for (h, body) in handles.into_iter().zip(bodies) {
                s.spawn(move || {
                    // Adoption itself can unwind with the Aborted
                    // sentinel (another task died before our first
                    // grant), so it lives inside the catch too.
                    let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                        h.adopt();
                        body()
                    }));
                    if let Err(p) = r {
                        abort_current(p);
                    }
                    retire();
                });
            }
        });
        if let Some(p) = sched.take_panic() {
            std::panic::resume_unwind(p);
        }
        sched.stats()
    }

    #[test]
    fn two_tasks_ping_pong_deterministically() {
        // Task 0 produces 100 items; task 1 consumes them through a
        // WaitQueue-guarded slot. Order of consumption is pinned.
        let slot = Arc::new(Mutex::new(Vec::<usize>::new()));
        let wq = Arc::new(WaitQueue::new());
        let seen = Arc::new(Mutex::new(Vec::new()));
        let (s2, w2, e2) = (Arc::clone(&slot), Arc::clone(&wq), Arc::clone(&seen));
        let (s1, w1) = (Arc::clone(&slot), Arc::clone(&wq));
        let stats = run_tasks(vec![
            Box::new(move || {
                let mut t = SimTime::ZERO;
                for i in 0..100 {
                    t += SimDuration::from_ns(10);
                    s1.lock().unwrap().push(i);
                    w1.wake_all();
                    park(t);
                }
            }),
            Box::new(move || {
                let mut t = SimTime::ZERO;
                let mut got = 0usize;
                while got < 100 {
                    let drained: Vec<usize> = std::mem::take(&mut *s2.lock().unwrap());
                    if drained.is_empty() {
                        w2.register_current();
                        park(t);
                        continue;
                    }
                    got += drained.len();
                    e2.lock().unwrap().extend(drained);
                    t += SimDuration::from_ns(10);
                }
            }),
        ]);
        let seen = seen.lock().unwrap();
        assert_eq!(*seen, (0..100).collect::<Vec<_>>());
        assert!(stats.events > 0);
        assert_eq!(stats.tasks_high_water, 2);
    }

    #[test]
    fn tie_break_is_time_then_rank() {
        // Three tasks all parked at the same virtual time resume in rank
        // order; at different times, in time order.
        let order = Arc::new(Mutex::new(Vec::new()));
        let bodies: Vec<Box<dyn FnOnce() + Send>> = (0..3u32)
            .map(|rank| {
                let order = Arc::clone(&order);
                Box::new(move || {
                    // Park at t=100 for everyone: wake order = rank order.
                    let w = park(SimTime::ZERO + SimDuration::from_ns(100));
                    assert_eq!(w, Wake::Stalled);
                    order.lock().unwrap().push(rank);
                }) as Box<dyn FnOnce() + Send>
            })
            .collect();
        run_tasks(bodies);
        assert_eq!(*order.lock().unwrap(), vec![0, 1, 2]);
    }

    #[test]
    fn stall_round_wakes_blocked_tasks() {
        // A task parked with nobody to wake it gets a Stalled wake
        // instead of hanging.
        let stalls = Arc::new(AtomicUsize::new(0));
        let s = Arc::clone(&stalls);
        let stats = run_tasks(vec![Box::new(move || {
            if park(SimTime::ZERO) == Wake::Stalled {
                s.fetch_add(1, Ordering::Relaxed);
            }
        })]);
        assert_eq!(stalls.load(Ordering::Relaxed), 1);
        assert!(stats.stalls >= 1);
    }

    #[test]
    fn barren_stalls_panic_with_task_table() {
        let r = std::panic::catch_unwind(|| {
            run_tasks(vec![Box::new(|| loop {
                park(SimTime::ZERO);
            })]);
        });
        let p = r.expect_err("deadlock must panic");
        let msg = p
            .downcast_ref::<String>()
            .cloned()
            .unwrap_or_else(|| p.downcast_ref::<&str>().map(|s| s.to_string()).unwrap());
        assert!(msg.contains("deadlock"), "{msg}");
        assert!(msg.contains("task table"), "{msg}");
    }

    #[test]
    fn dynamic_task_spawn_and_join() {
        let log = Arc::new(Mutex::new(Vec::new()));
        let l = Arc::clone(&log);
        run_tasks(vec![Box::new(move || {
            let child = spawn_handle(0, SimTime::ZERO + SimDuration::from_ns(5)).unwrap();
            let lc = Arc::clone(&l);
            let hc = child.clone();
            let jh = std::thread::spawn(move || {
                hc.adopt();
                lc.lock().unwrap().push("child");
                retire();
            });
            join_task(&child);
            l.lock().unwrap().push("parent-after-join");
            jh.join().unwrap();
        })]);
        assert_eq!(*log.lock().unwrap(), vec!["child", "parent-after-join"]);
    }

    #[test]
    fn panic_in_one_task_aborts_all() {
        let r = std::panic::catch_unwind(|| {
            run_tasks(vec![
                Box::new(|| panic!("boom in task 0")),
                Box::new(|| {
                    // Would deadlock forever without the abort.
                    loop {
                        park(SimTime::ZERO);
                    }
                }),
            ]);
        });
        let p = r.expect_err("panic must propagate");
        let msg = p.downcast_ref::<&str>().copied().unwrap_or_default();
        assert_eq!(msg, "boom in task 0");
    }

    #[test]
    fn pending_wake_is_not_lost() {
        // Producer wakes the consumer *before* it parks; the park must
        // return immediately rather than deadlock.
        let wq = Arc::new(WaitQueue::new());
        let w1 = Arc::clone(&wq);
        let w2 = Arc::clone(&wq);
        run_tasks(vec![
            Box::new(move || {
                w1.register_current();
                // Let the producer run first (it has rank 1 but we park).
                if park(SimTime::ZERO) == Wake::Stalled {
                    // Producer hadn't run yet; re-register and park again.
                    w1.register_current();
                    park(SimTime::ZERO);
                }
            }),
            Box::new(move || {
                w2.wake_all();
            }),
        ]);
    }
}
