//! Fault injection and connection monitoring.
//!
//! Section 2 of the paper stresses that SCI "is still a network": cables can
//! be pulled, nodes can fail, and transmission errors cause retried
//! transfers, which in turn means data can arrive **out of order** unless a
//! store barrier is issued. This module models those properties:
//!
//! * per-transaction error probability → the transaction is retried,
//!   costing extra latency;
//! * retried transactions make arrival timestamps non-monotonic (delivery
//!   jitter), which the PIO layer surfaces so only a store barrier
//!   guarantees complete delivery;
//! * links can be administratively failed (cable pulled) and restored;
//! * a [`ConnectionMonitor`] performs the session checking SCI-MPICH needs
//!   on top of raw remote memory.

use crate::mem::{OutOfBounds, SharedMem};
use crate::topology::{LinkId, Route};
use simclock::{SimDuration, SplitMix64};
use std::collections::{HashMap, HashSet};
use std::fmt;
use std::sync::Mutex;

/// Errors surfaced by the fabric.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SciError {
    /// A link on the route is down (cable pulled / node dead).
    LinkDown(LinkId),
    /// The connection monitor declared the peer dead.
    PeerDead(usize),
    /// Access outside an exported segment.
    OutOfBounds(crate::mem::OutOfBounds),
}

impl fmt::Display for SciError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SciError::LinkDown(l) => write!(f, "SCI link {} is down", l.0),
            SciError::PeerDead(n) => write!(f, "peer node n{n} declared dead"),
            SciError::OutOfBounds(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for SciError {}

impl From<crate::mem::OutOfBounds> for SciError {
    fn from(e: crate::mem::OutOfBounds) -> Self {
        SciError::OutOfBounds(e)
    }
}

/// A transaction (or burst) that errored out hard, together with the
/// virtual time the failed attempts consumed before giving up.
///
/// Callers that surface the error must charge `wasted` to their clock so
/// a hard failure after `max_retries` attempts costs the same virtual
/// time the retries would have on a recovering link.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct FailedTransaction {
    /// The underlying fabric error.
    pub error: SciError,
    /// Virtual time burned by the attempts that preceded the hard failure.
    pub wasted: SimDuration,
    /// Retries performed before the failure.
    pub retries: u32,
}

impl From<SciError> for FailedTransaction {
    /// An immediate failure (e.g. a severed route) that cost no retries.
    fn from(error: SciError) -> Self {
        FailedTransaction {
            error,
            wasted: SimDuration::ZERO,
            retries: 0,
        }
    }
}

impl fmt::Display for FailedTransaction {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} (after {} retries, {} ps wasted)",
            self.error,
            self.retries,
            self.wasted.as_ps()
        )
    }
}

impl std::error::Error for FailedTransaction {}

/// Configuration of the fault injector.
#[derive(Clone, Debug, PartialEq)]
pub struct FaultConfig {
    /// Probability that one SCI transaction needs a retry.
    pub error_rate: f64,
    /// Extra latency per retry (timeout + resend).
    pub retry_penalty: SimDuration,
    /// Maximum retries before the transaction errors out hard.
    pub max_retries: u32,
    /// Maximum delivery jitter applied to retried transactions (models
    /// reordering; a store barrier waits past all jitter).
    pub reorder_jitter: SimDuration,
    /// Probability that one SCI transaction *succeeds* at the protocol
    /// level yet delivers a flipped bit — the silent corruption real
    /// Dolphin adapters are exposed to and the reason SISCI ships
    /// `SCIStartSequence`/`SCICheckSequence`.
    pub corrupt_rate: f64,
    /// Probability that one posted store transaction is silently
    /// discarded: the destination keeps its previous content and nothing
    /// signals the loss.
    pub drop_rate: f64,
}

impl Default for FaultConfig {
    /// A healthy fabric: no injected faults.
    fn default() -> Self {
        FaultConfig {
            error_rate: 0.0,
            retry_penalty: SimDuration::from_us(5),
            max_retries: 8,
            reorder_jitter: SimDuration::from_us(2),
            corrupt_rate: 0.0,
            drop_rate: 0.0,
        }
    }
}

impl FaultConfig {
    /// A mildly lossy fabric for failure-injection tests.
    pub fn lossy(error_rate: f64) -> Self {
        FaultConfig {
            error_rate,
            ..FaultConfig::default()
        }
    }

    /// A fabric that silently corrupts or drops posted stores: every
    /// transaction still *succeeds*, but with probability `corrupt_rate`
    /// a bit flips and with probability `drop_rate` the store vanishes.
    pub fn silent(corrupt_rate: f64, drop_rate: f64) -> Self {
        FaultConfig {
            corrupt_rate,
            drop_rate,
            ..FaultConfig::default()
        }
    }
}

/// A silent fault applied to one transaction of a burst. Positions are
/// byte offsets into the burst's logical byte stream.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SilentFault {
    /// The transaction delivered, but the byte at `pos` arrived with
    /// `mask` XOR-ed in.
    BitFlip { pos: usize, mask: u8 },
    /// The posted store transaction covering `[pos, pos+len)` was
    /// discarded; the destination keeps whatever bytes were there.
    DroppedStore { pos: usize, len: usize },
}

/// Result of a SISCI-style sequence check over a transfer interval.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SeqStatus {
    /// No transmission error occurred in the checked interval.
    Ok,
    /// At least one transaction of the interval was silently corrupted
    /// or dropped. SISCI only *detects* this; repair is the caller's job.
    Tainted,
}

/// Outcome of passing one transaction through the injector.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TxnOutcome {
    /// Extra latency caused by retries.
    pub extra_latency: SimDuration,
    /// Delivery jitter: the transaction may land up to this much *later*
    /// than its nominal arrival, unordered relative to neighbours.
    pub jitter: SimDuration,
    /// Number of retries performed.
    pub retries: u32,
}

impl TxnOutcome {
    /// A clean pass-through.
    pub const CLEAN: TxnOutcome = TxnOutcome {
        extra_latency: SimDuration::ZERO,
        jitter: SimDuration::ZERO,
        retries: 0,
    };
}

/// Deterministic fault injector shared by all nodes of a fabric.
#[derive(Debug)]
pub struct FaultInjector {
    config: FaultConfig,
    seed: u64,
    state: Mutex<InjectorState>,
}

#[derive(Debug)]
struct InjectorState {
    rng: SplitMix64,
    down_links: HashSet<usize>,
    dead_nodes: HashSet<usize>,
    /// One RNG stream per ordered (source node, destination node) pair,
    /// forked lazily off the master seed. Silent-fault draws come from
    /// these: transfers between one pair of nodes are ordered by the
    /// protocol, so per-pair streams make silent faults reproducible even
    /// when many rank threads transfer concurrently (unlike retry draws,
    /// which share `rng` and interleave nondeterministically).
    pair_rngs: HashMap<(usize, usize), SplitMix64>,
}

impl FaultInjector {
    /// Build an injector with a deterministic seed.
    pub fn new(config: FaultConfig, seed: u64) -> Self {
        FaultInjector {
            config,
            seed,
            state: Mutex::new(InjectorState {
                rng: SplitMix64::new(seed),
                down_links: HashSet::new(),
                dead_nodes: HashSet::new(),
                pair_rngs: HashMap::new(),
            }),
        }
    }

    /// The active configuration.
    pub fn config(&self) -> &FaultConfig {
        &self.config
    }

    /// Administratively fail a link (pull the cable).
    pub fn fail_link(&self, link: LinkId) {
        self.state.lock().unwrap().down_links.insert(link.0);
    }

    /// Restore a failed link.
    pub fn restore_link(&self, link: LinkId) {
        self.state.lock().unwrap().down_links.remove(&link.0);
    }

    /// Mark a node as dead (crash).
    pub fn kill_node(&self, node: usize) {
        self.state.lock().unwrap().dead_nodes.insert(node);
    }

    /// Revive a dead node.
    pub fn revive_node(&self, node: usize) {
        self.state.lock().unwrap().dead_nodes.remove(&node);
    }

    /// True if the node is currently marked dead.
    pub fn node_dead(&self, node: usize) -> bool {
        self.state.lock().unwrap().dead_nodes.contains(&node)
    }

    /// Check a route for failed links.
    pub fn check_route(&self, route: &Route) -> Result<(), SciError> {
        let st = self.state.lock().unwrap();
        for l in &route.links {
            if st.down_links.contains(&l.0) {
                return Err(SciError::LinkDown(*l));
            }
        }
        Ok(())
    }

    /// Pass one transaction through the injector: possibly retries (extra
    /// latency + delivery jitter). Returns an error only if `max_retries`
    /// consecutive attempts fail.
    pub fn transact(&self, route: &Route) -> Result<TxnOutcome, FailedTransaction> {
        self.transact_bulk(route, 1)
    }

    /// Pass a burst of `txns` SCI transactions through the injector: each
    /// transaction independently needs a retry with the configured error
    /// rate. A 64 kiB chunk is ~1000 transactions, so losses scale with
    /// transfer size, as on the real wire.
    ///
    /// On hard failure the returned [`FailedTransaction`] carries the
    /// virtual time the failed attempts burned (`retry_penalty` each), so
    /// an unrecoverable transfer is not free.
    pub fn transact_bulk(&self, route: &Route, txns: u64) -> Result<TxnOutcome, FailedTransaction> {
        self.check_route(route)?;
        if self.config.error_rate <= 0.0 || txns == 0 {
            return Ok(TxnOutcome::CLEAN);
        }
        let mut st = self.state.lock().unwrap();
        let mut retries = 0u32;
        for _ in 0..txns {
            let mut consecutive = 0u32;
            while st.rng.chance(self.config.error_rate) {
                consecutive += 1;
                retries += 1;
                if consecutive > self.config.max_retries {
                    // Persistent failure: report the first link as faulty,
                    // charging the time the failed attempts consumed.
                    let link = route.links.first().copied().unwrap_or(LinkId(0));
                    obs::inc(obs::Counter::LinkHardFailures);
                    obs::add(obs::Counter::LinkTxnRetries, retries as u64);
                    return Err(FailedTransaction {
                        error: SciError::LinkDown(link),
                        wasted: self.config.retry_penalty.saturating_mul(retries as u64),
                        retries,
                    });
                }
            }
        }
        if retries == 0 {
            return Ok(TxnOutcome::CLEAN);
        }
        obs::add(obs::Counter::LinkTxnRetries, retries as u64);
        let jitter_ps = st.rng.next_below(self.config.reorder_jitter.as_ps().max(1));
        Ok(TxnOutcome {
            extra_latency: self.config.retry_penalty.saturating_mul(retries as u64),
            jitter: SimDuration::from_ps(jitter_ps),
            retries,
        })
    }

    /// Roll silent faults for a burst of `total_bytes` moved in SCI
    /// transactions of `txn_bytes` each, flowing between the ordered node
    /// `pair` (source, destination). `stores` selects whether dropped-store
    /// faults apply: a lost *read* transaction stalls and retries inside
    /// the adapter (it cannot be silent), so read paths only see bit flips.
    ///
    /// Intra-node transfers (`pair.0 == pair.1`) never fault, and when
    /// both silent rates are zero this returns without drawing or locking
    /// — existing traces stay bit-identical.
    pub fn silent_faults(
        &self,
        pair: (usize, usize),
        txn_bytes: usize,
        total_bytes: usize,
        stores: bool,
    ) -> Vec<SilentFault> {
        let corrupt = self.config.corrupt_rate;
        let drop = if stores { self.config.drop_rate } else { 0.0 };
        if (corrupt <= 0.0 && drop <= 0.0) || total_bytes == 0 || pair.0 == pair.1 {
            return Vec::new();
        }
        let txn_bytes = txn_bytes.max(1);
        let mut st = self.state.lock().unwrap();
        let seed = self.seed;
        let rng = st.pair_rngs.entry(pair).or_insert_with(|| {
            let key = ((pair.0 as u64) << 32) | pair.1 as u64;
            SplitMix64::new(seed).fork(key)
        });
        let mut faults = Vec::new();
        let mut pos = 0usize;
        while pos < total_bytes {
            let len = txn_bytes.min(total_bytes - pos);
            if corrupt > 0.0 && rng.chance(corrupt) {
                let byte = pos + rng.next_below(len as u64) as usize;
                let mask = 1u8 << rng.next_below(8);
                faults.push(SilentFault::BitFlip { pos: byte, mask });
            } else if drop > 0.0 && rng.chance(drop) {
                faults.push(SilentFault::DroppedStore { pos, len });
            }
            pos += len;
        }
        if !faults.is_empty() {
            obs::add(obs::Counter::CorruptionsInjected, faults.len() as u64);
        }
        faults
    }

    /// Apply silent store faults directly to a burst carried in `data`
    /// (for protocol paths that model a PIO burst without moving bytes
    /// through a mapped segment, e.g. the eager path and the one-sided
    /// emulation packets). A dropped store leaves the pre-posted receive
    /// buffer's zeroed content. Returns the number of faults applied.
    pub fn corrupt_buffer(&self, pair: (usize, usize), txn_bytes: usize, data: &mut [u8]) -> usize {
        let faults = self.silent_faults(pair, txn_bytes, data.len(), true);
        for f in &faults {
            match *f {
                SilentFault::BitFlip { pos, mask } => data[pos] ^= mask,
                SilentFault::DroppedStore { pos, len } => data[pos..pos + len].fill(0),
            }
        }
        faults.len()
    }
}

/// One entry of a node-death schedule: `node` is to be killed once the
/// driving harness reaches virtual-time offset `after` in its own
/// schedule. Produced by [`death_schedule`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct DeathEvent {
    /// The node to kill.
    pub node: usize,
    /// Virtual-time offset at which the death takes effect, relative to
    /// whatever origin the harness anchors the schedule to.
    pub after: SimDuration,
}

/// Draw a seed-deterministic schedule of up to `deaths` *distinct* node
/// deaths among `nodes` nodes, each with an independent virtual-time
/// offset in `[0, horizon)`.
///
/// The function is pure: it forks a private RNG stream off `seed` and
/// never reads or advances any [`FaultInjector`] state, so computing a
/// schedule cannot perturb retry draws or per-pair silent-fault streams
/// — runs with and without a schedule stay bit-identical until the
/// first kill actually lands. Events come back sorted by `(after,
/// node)` so harnesses can replay them in one deterministic pass.
///
/// Node 0 is never scheduled to die: the recovery protocols treat the
/// lowest-ranked survivor as the shrink leader, and chaos harnesses need
/// one rank that is guaranteed to outlive every schedule to collect
/// verdicts from. With `nodes <= 1` or `deaths == 0` the schedule is
/// empty.
pub fn death_schedule(
    seed: u64,
    nodes: usize,
    deaths: usize,
    horizon: SimDuration,
) -> Vec<DeathEvent> {
    if nodes <= 1 || deaths == 0 {
        return Vec::new();
    }
    let mut rng = SplitMix64::new(seed).fork(0xDEAD);
    let deaths = deaths.min(nodes - 1);
    let mut victims: Vec<usize> = Vec::with_capacity(deaths);
    while victims.len() < deaths {
        // Rejection-sample distinct victims from 1..nodes. Each accepted
        // draw shrinks the candidate set, so termination is certain and
        // the draw sequence is a pure function of the seed.
        let n = 1 + rng.next_below(nodes as u64 - 1) as usize;
        if !victims.contains(&n) {
            victims.push(n);
        }
    }
    let mut events: Vec<DeathEvent> = victims
        .into_iter()
        .map(|node| DeathEvent {
            node,
            after: SimDuration::from_ps(rng.next_below(horizon.as_ps().max(1))),
        })
        .collect();
    events.sort_unstable_by_key(|e| (e.after, e.node));
    events
}

/// Land `data` at `mem[dst_offset..]` with `faults` applied. Fault
/// positions are relative to the burst's byte stream; `stream_pos` is the
/// stream position of `data[0]` (nonzero for scatter/gather entries in the
/// middle of a DMA descriptor list). Dropped transactions leave the
/// destination's previous content in place — exactly what a vanished
/// posted store does.
pub fn write_with_faults(
    mem: &SharedMem,
    dst_offset: usize,
    data: &[u8],
    stream_pos: usize,
    faults: &[SilentFault],
) -> Result<(), OutOfBounds> {
    if faults.is_empty() {
        return mem.write(dst_offset, data);
    }
    mem.check_range(dst_offset, data.len())?;
    let window = stream_pos..stream_pos + data.len();
    let mut scratch = data.to_vec();
    let mut dropped: Vec<(usize, usize)> = Vec::new();
    for f in faults {
        match *f {
            SilentFault::BitFlip { pos, mask } if window.contains(&pos) => {
                scratch[pos - stream_pos] ^= mask;
            }
            SilentFault::DroppedStore { pos, len } => {
                let lo = pos.max(window.start);
                let hi = (pos + len).min(window.end);
                if lo < hi {
                    dropped.push((lo - stream_pos, hi - stream_pos));
                }
            }
            _ => {}
        }
    }
    dropped.sort_unstable();
    let mut cur = 0usize;
    for (lo, hi) in dropped {
        if lo > cur {
            mem.write(dst_offset + cur, &scratch[cur..lo])?;
        }
        cur = cur.max(hi);
    }
    if cur < scratch.len() {
        mem.write(dst_offset + cur, &scratch[cur..])?;
    }
    Ok(())
}

/// Heartbeat-style connection monitor: SCI-MPICH checks peers before
/// trusting transparent remote memory, because a hung node looks exactly
/// like slow memory.
#[derive(Debug)]
pub struct ConnectionMonitor<'a> {
    injector: &'a FaultInjector,
    /// Probe cost per check (a small remote read round trip).
    pub probe_cost: SimDuration,
}

impl<'a> ConnectionMonitor<'a> {
    /// A monitor bound to a fabric's injector.
    pub fn new(injector: &'a FaultInjector, probe_cost: SimDuration) -> Self {
        ConnectionMonitor {
            injector,
            probe_cost,
        }
    }

    /// Probe a peer: costs `probe_cost` on the caller's clock and errors if
    /// the peer is dead or the route is severed.
    pub fn probe(
        &self,
        clock: &mut simclock::Clock,
        peer: usize,
        route: &Route,
    ) -> Result<(), SciError> {
        clock.advance(self.probe_cost);
        self.injector.check_route(route)?;
        if self.injector.node_dead(peer) {
            return Err(SciError::PeerDead(peer));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topology::{NodeId, Topology};
    use simclock::Clock;

    fn route() -> Route {
        Topology::ringlet(8).route(NodeId(0), NodeId(3))
    }

    #[test]
    fn healthy_fabric_is_clean() {
        let inj = FaultInjector::new(FaultConfig::default(), 1);
        for _ in 0..1000 {
            assert_eq!(inj.transact(&route()).unwrap(), TxnOutcome::CLEAN);
        }
    }

    #[test]
    fn lossy_fabric_retries_sometimes() {
        let inj = FaultInjector::new(FaultConfig::lossy(0.2), 42);
        let mut retried = 0;
        for _ in 0..1000 {
            let out = inj.transact(&route()).unwrap();
            if out.retries > 0 {
                retried += 1;
                assert!(out.extra_latency >= FaultConfig::default().retry_penalty);
            }
        }
        // ~20% of transactions should see at least one retry.
        assert!((100..350).contains(&retried), "retried {retried}");
    }

    #[test]
    fn injector_is_deterministic() {
        let run = |seed| {
            let inj = FaultInjector::new(FaultConfig::lossy(0.3), seed);
            (0..100)
                .map(|_| inj.transact(&route()).unwrap().retries)
                .collect::<Vec<_>>()
        };
        assert_eq!(run(7), run(7));
        assert_ne!(run(7), run(8));
    }

    #[test]
    fn pulled_cable_blocks_routes_through_it() {
        let inj = FaultInjector::new(FaultConfig::default(), 1);
        inj.fail_link(LinkId(1));
        let r = route(); // crosses links 0,1,2
        assert_eq!(
            inj.transact(&r),
            Err(FailedTransaction::from(SciError::LinkDown(LinkId(1))))
        );
        inj.restore_link(LinkId(1));
        assert!(inj.transact(&r).is_ok());
    }

    #[test]
    fn unaffected_route_still_works() {
        let topo = Topology::ringlet(8);
        let inj = FaultInjector::new(FaultConfig::default(), 1);
        inj.fail_link(LinkId(6));
        let r = topo.route(NodeId(0), NodeId(3)); // links 0..2
        assert!(inj.transact(&r).is_ok());
    }

    #[test]
    fn persistent_errors_eventually_fail_hard() {
        let cfg = FaultConfig {
            error_rate: 1.0, // every attempt fails
            max_retries: 3,
            ..FaultConfig::default()
        };
        let inj = FaultInjector::new(cfg, 9);
        let err = inj.transact(&route()).unwrap_err();
        assert!(matches!(err.error, SciError::LinkDown(_)));
    }

    /// Regression: a transaction that errors out hard must still charge
    /// the virtual time its failed attempts consumed — a dead link is not
    /// a free path, the adapter spent `retry_penalty` per attempt before
    /// giving up.
    #[test]
    fn hard_failure_charges_wasted_retry_time() {
        let cfg = FaultConfig {
            error_rate: 1.0, // every attempt fails
            max_retries: 3,
            ..FaultConfig::default()
        };
        let penalty = cfg.retry_penalty;
        let inj = FaultInjector::new(cfg, 9);
        let err = inj.transact(&route()).unwrap_err();
        // max_retries + 1 attempts burned a retry_penalty each.
        assert_eq!(err.retries, 4);
        assert_eq!(err.wasted, penalty.saturating_mul(4));
        // An administratively severed route fails instantly and free.
        inj.fail_link(LinkId(0));
        let err = inj.transact(&route()).unwrap_err();
        assert_eq!(err.wasted, SimDuration::ZERO);
        assert_eq!(err.retries, 0);
    }

    #[test]
    fn monitor_detects_dead_peer() {
        let inj = FaultInjector::new(FaultConfig::default(), 1);
        let mon = ConnectionMonitor::new(&inj, SimDuration::from_us(4));
        let mut clock = Clock::new();
        assert!(mon.probe(&mut clock, 3, &route()).is_ok());
        inj.kill_node(3);
        assert_eq!(
            mon.probe(&mut clock, 3, &route()),
            Err(SciError::PeerDead(3))
        );
        inj.revive_node(3);
        assert!(mon.probe(&mut clock, 3, &route()).is_ok());
        // Three probes cost 12us.
        assert_eq!(clock.now().as_ps(), SimDuration::from_us(12).as_ps());
    }

    #[test]
    fn error_display_is_informative() {
        let e = SciError::LinkDown(LinkId(4));
        assert!(e.to_string().contains("link 4"));
        let e = SciError::PeerDead(2);
        assert!(e.to_string().contains("n2"));
    }

    #[test]
    fn silent_faults_default_off_and_draw_free() {
        let inj = FaultInjector::new(FaultConfig::default(), 3);
        assert!(inj.silent_faults((0, 3), 64, 1 << 20, true).is_empty());
        // The shared retry RNG must be untouched by silent-fault queries:
        // two injectors, one queried and one not, stay in lockstep.
        let a = FaultInjector::new(FaultConfig::lossy(0.3), 5);
        let b = FaultInjector::new(FaultConfig::lossy(0.3), 5);
        a.silent_faults((0, 1), 64, 4096, true);
        let draws_a: Vec<u32> = (0..50)
            .map(|_| a.transact(&route()).unwrap().retries)
            .collect();
        let draws_b: Vec<u32> = (0..50)
            .map(|_| b.transact(&route()).unwrap().retries)
            .collect();
        assert_eq!(draws_a, draws_b);
    }

    #[test]
    fn silent_faults_are_per_pair_deterministic() {
        let roll = |pair| {
            let inj = FaultInjector::new(FaultConfig::silent(0.1, 0.05), 77);
            inj.silent_faults(pair, 64, 64 * 1024, true)
        };
        assert_eq!(roll((0, 2)), roll((0, 2)));
        assert_ne!(roll((0, 2)), roll((2, 0)), "pairs are ordered");
        // Interleaving with another pair's draws must not perturb a pair's
        // own sequence.
        let inj = FaultInjector::new(FaultConfig::silent(0.1, 0.05), 77);
        inj.silent_faults((1, 3), 64, 64 * 1024, true);
        assert_eq!(inj.silent_faults((0, 2), 64, 64 * 1024, true), roll((0, 2)));
    }

    #[test]
    fn intra_node_transfers_never_fault() {
        let inj = FaultInjector::new(FaultConfig::silent(1.0, 1.0), 1);
        assert!(inj.silent_faults((2, 2), 64, 4096, true).is_empty());
    }

    #[test]
    fn read_paths_see_flips_but_no_drops() {
        let inj = FaultInjector::new(FaultConfig::silent(0.0, 1.0), 1);
        assert!(inj.silent_faults((0, 1), 64, 4096, false).is_empty());
        let inj = FaultInjector::new(FaultConfig::silent(1.0, 0.0), 1);
        let faults = inj.silent_faults((0, 1), 64, 4096, false);
        assert_eq!(faults.len(), 64, "one flip per transaction at rate 1");
        assert!(faults
            .iter()
            .all(|f| matches!(f, SilentFault::BitFlip { .. })));
    }

    #[test]
    fn write_with_faults_flips_and_drops() {
        let mem = SharedMem::new(256);
        mem.fill(0, 256, 0xEE).unwrap();
        let data = vec![0x00u8; 128];
        let faults = [
            SilentFault::BitFlip { pos: 5, mask: 0x80 },
            SilentFault::DroppedStore { pos: 64, len: 64 },
        ];
        write_with_faults(&mem, 0, &data, 0, &faults).unwrap();
        let snap = mem.snapshot();
        assert_eq!(snap[5], 0x80, "bit flip landed");
        assert!(snap[..5].iter().all(|&b| b == 0), "clean bytes landed");
        assert!(
            snap[64..128].iter().all(|&b| b == 0xEE),
            "dropped store left previous content"
        );
        assert!(snap[128..].iter().all(|&b| b == 0xEE), "untouched tail");
    }

    #[test]
    fn death_schedule_is_pure_and_deterministic() {
        let horizon = SimDuration::from_ms(5);
        let a = death_schedule(11, 8, 3, horizon);
        let b = death_schedule(11, 8, 3, horizon);
        assert_eq!(a, b, "same seed, same schedule");
        assert_ne!(
            death_schedule(11, 8, 3, horizon),
            death_schedule(12, 8, 3, horizon),
            "different seeds differ"
        );
        // Distinct victims, node 0 spared, offsets inside the horizon,
        // events sorted by time.
        assert_eq!(a.len(), 3);
        let mut nodes: Vec<usize> = a.iter().map(|e| e.node).collect();
        nodes.sort_unstable();
        nodes.dedup();
        assert_eq!(nodes.len(), 3, "victims are distinct");
        assert!(a.iter().all(|e| e.node != 0 && e.node < 8));
        assert!(a.iter().all(|e| e.after < horizon));
        assert!(a.windows(2).all(|w| w[0].after <= w[1].after));
    }

    #[test]
    fn death_schedule_caps_at_survivable_population() {
        // Asking for more deaths than killable nodes caps at nodes-1
        // (node 0 always survives); degenerate worlds get no deaths.
        let horizon = SimDuration::from_ms(1);
        assert_eq!(death_schedule(5, 4, 10, horizon).len(), 3);
        assert!(death_schedule(5, 1, 2, horizon).is_empty());
        assert!(death_schedule(5, 0, 2, horizon).is_empty());
        assert!(death_schedule(5, 8, 0, horizon).is_empty());
    }

    #[test]
    fn death_schedule_leaves_injector_streams_untouched() {
        // Computing a schedule must not perturb any injector RNG: two
        // injectors, one alongside schedule draws and one without, stay
        // in lockstep.
        let a = FaultInjector::new(FaultConfig::lossy(0.3), 5);
        let b = FaultInjector::new(FaultConfig::lossy(0.3), 5);
        let _ = death_schedule(5, 8, 4, SimDuration::from_ms(2));
        let draws_a: Vec<u32> = (0..50)
            .map(|_| a.transact(&route()).unwrap().retries)
            .collect();
        let draws_b: Vec<u32> = (0..50)
            .map(|_| b.transact(&route()).unwrap().retries)
            .collect();
        assert_eq!(draws_a, draws_b);
    }

    #[test]
    fn corrupt_buffer_applies_in_place() {
        let inj = FaultInjector::new(FaultConfig::silent(1.0, 0.0), 4);
        let mut data = vec![0xFFu8; 64]; // one transaction
        let n = inj.corrupt_buffer((0, 1), 64, &mut data);
        assert_eq!(n, 1);
        assert_eq!(
            data.iter().filter(|&&b| b != 0xFF).count(),
            1,
            "exactly one flipped byte"
        );
    }
}
