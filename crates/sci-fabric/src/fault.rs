//! Fault injection and connection monitoring.
//!
//! Section 2 of the paper stresses that SCI "is still a network": cables can
//! be pulled, nodes can fail, and transmission errors cause retried
//! transfers, which in turn means data can arrive **out of order** unless a
//! store barrier is issued. This module models those properties:
//!
//! * per-transaction error probability → the transaction is retried,
//!   costing extra latency;
//! * retried transactions make arrival timestamps non-monotonic (delivery
//!   jitter), which the PIO layer surfaces so only a store barrier
//!   guarantees complete delivery;
//! * links can be administratively failed (cable pulled) and restored;
//! * a [`ConnectionMonitor`] performs the session checking SCI-MPICH needs
//!   on top of raw remote memory.

use crate::topology::{LinkId, Route};
use simclock::{SimDuration, SplitMix64};
use std::collections::HashSet;
use std::fmt;
use std::sync::Mutex;

/// Errors surfaced by the fabric.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SciError {
    /// A link on the route is down (cable pulled / node dead).
    LinkDown(LinkId),
    /// The connection monitor declared the peer dead.
    PeerDead(usize),
    /// Access outside an exported segment.
    OutOfBounds(crate::mem::OutOfBounds),
}

impl fmt::Display for SciError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SciError::LinkDown(l) => write!(f, "SCI link {} is down", l.0),
            SciError::PeerDead(n) => write!(f, "peer node n{n} declared dead"),
            SciError::OutOfBounds(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for SciError {}

impl From<crate::mem::OutOfBounds> for SciError {
    fn from(e: crate::mem::OutOfBounds) -> Self {
        SciError::OutOfBounds(e)
    }
}

/// A transaction (or burst) that errored out hard, together with the
/// virtual time the failed attempts consumed before giving up.
///
/// Callers that surface the error must charge `wasted` to their clock so
/// a hard failure after `max_retries` attempts costs the same virtual
/// time the retries would have on a recovering link.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct FailedTransaction {
    /// The underlying fabric error.
    pub error: SciError,
    /// Virtual time burned by the attempts that preceded the hard failure.
    pub wasted: SimDuration,
    /// Retries performed before the failure.
    pub retries: u32,
}

impl From<SciError> for FailedTransaction {
    /// An immediate failure (e.g. a severed route) that cost no retries.
    fn from(error: SciError) -> Self {
        FailedTransaction {
            error,
            wasted: SimDuration::ZERO,
            retries: 0,
        }
    }
}

impl fmt::Display for FailedTransaction {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} (after {} retries, {} ps wasted)",
            self.error,
            self.retries,
            self.wasted.as_ps()
        )
    }
}

impl std::error::Error for FailedTransaction {}

/// Configuration of the fault injector.
#[derive(Clone, Debug, PartialEq)]
pub struct FaultConfig {
    /// Probability that one SCI transaction needs a retry.
    pub error_rate: f64,
    /// Extra latency per retry (timeout + resend).
    pub retry_penalty: SimDuration,
    /// Maximum retries before the transaction errors out hard.
    pub max_retries: u32,
    /// Maximum delivery jitter applied to retried transactions (models
    /// reordering; a store barrier waits past all jitter).
    pub reorder_jitter: SimDuration,
}

impl Default for FaultConfig {
    /// A healthy fabric: no injected faults.
    fn default() -> Self {
        FaultConfig {
            error_rate: 0.0,
            retry_penalty: SimDuration::from_us(5),
            max_retries: 8,
            reorder_jitter: SimDuration::from_us(2),
        }
    }
}

impl FaultConfig {
    /// A mildly lossy fabric for failure-injection tests.
    pub fn lossy(error_rate: f64) -> Self {
        FaultConfig {
            error_rate,
            ..FaultConfig::default()
        }
    }
}

/// Outcome of passing one transaction through the injector.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TxnOutcome {
    /// Extra latency caused by retries.
    pub extra_latency: SimDuration,
    /// Delivery jitter: the transaction may land up to this much *later*
    /// than its nominal arrival, unordered relative to neighbours.
    pub jitter: SimDuration,
    /// Number of retries performed.
    pub retries: u32,
}

impl TxnOutcome {
    /// A clean pass-through.
    pub const CLEAN: TxnOutcome = TxnOutcome {
        extra_latency: SimDuration::ZERO,
        jitter: SimDuration::ZERO,
        retries: 0,
    };
}

/// Deterministic fault injector shared by all nodes of a fabric.
#[derive(Debug)]
pub struct FaultInjector {
    config: FaultConfig,
    state: Mutex<InjectorState>,
}

#[derive(Debug)]
struct InjectorState {
    rng: SplitMix64,
    down_links: HashSet<usize>,
    dead_nodes: HashSet<usize>,
}

impl FaultInjector {
    /// Build an injector with a deterministic seed.
    pub fn new(config: FaultConfig, seed: u64) -> Self {
        FaultInjector {
            config,
            state: Mutex::new(InjectorState {
                rng: SplitMix64::new(seed),
                down_links: HashSet::new(),
                dead_nodes: HashSet::new(),
            }),
        }
    }

    /// The active configuration.
    pub fn config(&self) -> &FaultConfig {
        &self.config
    }

    /// Administratively fail a link (pull the cable).
    pub fn fail_link(&self, link: LinkId) {
        self.state.lock().unwrap().down_links.insert(link.0);
    }

    /// Restore a failed link.
    pub fn restore_link(&self, link: LinkId) {
        self.state.lock().unwrap().down_links.remove(&link.0);
    }

    /// Mark a node as dead (crash).
    pub fn kill_node(&self, node: usize) {
        self.state.lock().unwrap().dead_nodes.insert(node);
    }

    /// Revive a dead node.
    pub fn revive_node(&self, node: usize) {
        self.state.lock().unwrap().dead_nodes.remove(&node);
    }

    /// True if the node is currently marked dead.
    pub fn node_dead(&self, node: usize) -> bool {
        self.state.lock().unwrap().dead_nodes.contains(&node)
    }

    /// Check a route for failed links.
    pub fn check_route(&self, route: &Route) -> Result<(), SciError> {
        let st = self.state.lock().unwrap();
        for l in &route.links {
            if st.down_links.contains(&l.0) {
                return Err(SciError::LinkDown(*l));
            }
        }
        Ok(())
    }

    /// Pass one transaction through the injector: possibly retries (extra
    /// latency + delivery jitter). Returns an error only if `max_retries`
    /// consecutive attempts fail.
    pub fn transact(&self, route: &Route) -> Result<TxnOutcome, FailedTransaction> {
        self.transact_bulk(route, 1)
    }

    /// Pass a burst of `txns` SCI transactions through the injector: each
    /// transaction independently needs a retry with the configured error
    /// rate. A 64 kiB chunk is ~1000 transactions, so losses scale with
    /// transfer size, as on the real wire.
    ///
    /// On hard failure the returned [`FailedTransaction`] carries the
    /// virtual time the failed attempts burned (`retry_penalty` each), so
    /// an unrecoverable transfer is not free.
    pub fn transact_bulk(&self, route: &Route, txns: u64) -> Result<TxnOutcome, FailedTransaction> {
        self.check_route(route)?;
        if self.config.error_rate <= 0.0 || txns == 0 {
            return Ok(TxnOutcome::CLEAN);
        }
        let mut st = self.state.lock().unwrap();
        let mut retries = 0u32;
        for _ in 0..txns {
            let mut consecutive = 0u32;
            while st.rng.chance(self.config.error_rate) {
                consecutive += 1;
                retries += 1;
                if consecutive > self.config.max_retries {
                    // Persistent failure: report the first link as faulty,
                    // charging the time the failed attempts consumed.
                    let link = route.links.first().copied().unwrap_or(LinkId(0));
                    obs::inc(obs::Counter::LinkHardFailures);
                    obs::add(obs::Counter::LinkTxnRetries, retries as u64);
                    return Err(FailedTransaction {
                        error: SciError::LinkDown(link),
                        wasted: self.config.retry_penalty.saturating_mul(retries as u64),
                        retries,
                    });
                }
            }
        }
        if retries == 0 {
            return Ok(TxnOutcome::CLEAN);
        }
        obs::add(obs::Counter::LinkTxnRetries, retries as u64);
        let jitter_ps = st.rng.next_below(self.config.reorder_jitter.as_ps().max(1));
        Ok(TxnOutcome {
            extra_latency: self.config.retry_penalty.saturating_mul(retries as u64),
            jitter: SimDuration::from_ps(jitter_ps),
            retries,
        })
    }
}

/// Heartbeat-style connection monitor: SCI-MPICH checks peers before
/// trusting transparent remote memory, because a hung node looks exactly
/// like slow memory.
#[derive(Debug)]
pub struct ConnectionMonitor<'a> {
    injector: &'a FaultInjector,
    /// Probe cost per check (a small remote read round trip).
    pub probe_cost: SimDuration,
}

impl<'a> ConnectionMonitor<'a> {
    /// A monitor bound to a fabric's injector.
    pub fn new(injector: &'a FaultInjector, probe_cost: SimDuration) -> Self {
        ConnectionMonitor {
            injector,
            probe_cost,
        }
    }

    /// Probe a peer: costs `probe_cost` on the caller's clock and errors if
    /// the peer is dead or the route is severed.
    pub fn probe(
        &self,
        clock: &mut simclock::Clock,
        peer: usize,
        route: &Route,
    ) -> Result<(), SciError> {
        clock.advance(self.probe_cost);
        self.injector.check_route(route)?;
        if self.injector.node_dead(peer) {
            return Err(SciError::PeerDead(peer));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topology::{NodeId, Topology};
    use simclock::Clock;

    fn route() -> Route {
        Topology::ringlet(8).route(NodeId(0), NodeId(3))
    }

    #[test]
    fn healthy_fabric_is_clean() {
        let inj = FaultInjector::new(FaultConfig::default(), 1);
        for _ in 0..1000 {
            assert_eq!(inj.transact(&route()).unwrap(), TxnOutcome::CLEAN);
        }
    }

    #[test]
    fn lossy_fabric_retries_sometimes() {
        let inj = FaultInjector::new(FaultConfig::lossy(0.2), 42);
        let mut retried = 0;
        for _ in 0..1000 {
            let out = inj.transact(&route()).unwrap();
            if out.retries > 0 {
                retried += 1;
                assert!(out.extra_latency >= FaultConfig::default().retry_penalty);
            }
        }
        // ~20% of transactions should see at least one retry.
        assert!((100..350).contains(&retried), "retried {retried}");
    }

    #[test]
    fn injector_is_deterministic() {
        let run = |seed| {
            let inj = FaultInjector::new(FaultConfig::lossy(0.3), seed);
            (0..100)
                .map(|_| inj.transact(&route()).unwrap().retries)
                .collect::<Vec<_>>()
        };
        assert_eq!(run(7), run(7));
        assert_ne!(run(7), run(8));
    }

    #[test]
    fn pulled_cable_blocks_routes_through_it() {
        let inj = FaultInjector::new(FaultConfig::default(), 1);
        inj.fail_link(LinkId(1));
        let r = route(); // crosses links 0,1,2
        assert_eq!(
            inj.transact(&r),
            Err(FailedTransaction::from(SciError::LinkDown(LinkId(1))))
        );
        inj.restore_link(LinkId(1));
        assert!(inj.transact(&r).is_ok());
    }

    #[test]
    fn unaffected_route_still_works() {
        let topo = Topology::ringlet(8);
        let inj = FaultInjector::new(FaultConfig::default(), 1);
        inj.fail_link(LinkId(6));
        let r = topo.route(NodeId(0), NodeId(3)); // links 0..2
        assert!(inj.transact(&r).is_ok());
    }

    #[test]
    fn persistent_errors_eventually_fail_hard() {
        let cfg = FaultConfig {
            error_rate: 1.0, // every attempt fails
            max_retries: 3,
            ..FaultConfig::default()
        };
        let inj = FaultInjector::new(cfg, 9);
        let err = inj.transact(&route()).unwrap_err();
        assert!(matches!(err.error, SciError::LinkDown(_)));
    }

    /// Regression: a transaction that errors out hard must still charge
    /// the virtual time its failed attempts consumed — a dead link is not
    /// a free path, the adapter spent `retry_penalty` per attempt before
    /// giving up.
    #[test]
    fn hard_failure_charges_wasted_retry_time() {
        let cfg = FaultConfig {
            error_rate: 1.0, // every attempt fails
            max_retries: 3,
            ..FaultConfig::default()
        };
        let penalty = cfg.retry_penalty;
        let inj = FaultInjector::new(cfg, 9);
        let err = inj.transact(&route()).unwrap_err();
        // max_retries + 1 attempts burned a retry_penalty each.
        assert_eq!(err.retries, 4);
        assert_eq!(err.wasted, penalty.saturating_mul(4));
        // An administratively severed route fails instantly and free.
        inj.fail_link(LinkId(0));
        let err = inj.transact(&route()).unwrap_err();
        assert_eq!(err.wasted, SimDuration::ZERO);
        assert_eq!(err.retries, 0);
    }

    #[test]
    fn monitor_detects_dead_peer() {
        let inj = FaultInjector::new(FaultConfig::default(), 1);
        let mon = ConnectionMonitor::new(&inj, SimDuration::from_us(4));
        let mut clock = Clock::new();
        assert!(mon.probe(&mut clock, 3, &route()).is_ok());
        inj.kill_node(3);
        assert_eq!(
            mon.probe(&mut clock, 3, &route()),
            Err(SciError::PeerDead(3))
        );
        inj.revive_node(3);
        assert!(mon.probe(&mut clock, 3, &route()).is_ok());
        // Three probes cost 12us.
        assert_eq!(clock.now().as_ps(), SimDuration::from_us(12).as_ps());
    }

    #[test]
    fn error_display_is_informative() {
        let e = SciError::LinkDown(LinkId(4));
        assert!(e.to_string().contains("link 4"));
        let e = SciError::PeerDead(2);
        assert!(e.to_string().contains("n2"));
    }
}
