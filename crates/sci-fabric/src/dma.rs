//! DMA transfers through the PCI-SCI adapter's DMA engine.
//!
//! DMA trades a high setup cost (descriptor build, kernel transition,
//! doorbell) for CPU-free streaming. The paper uses DMA as the second raw
//! transfer mode in Figure 1 and names DMA-based non-contiguous transfer as
//! future work (§6) — we implement both directions plus a scatter/gather
//! descriptor list so that future-work path can be exercised.

use crate::fault::{write_with_faults, SciError, SilentFault};
use crate::segment::Mapping;
use crate::Fabric;
use simclock::{Clock, SimDuration, SimTime};
use std::sync::Arc;

/// A completed DMA transfer's timing.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct DmaCompletion {
    /// When the CPU was free again (after descriptor post).
    pub cpu_free: SimTime,
    /// When the last byte arrived at the destination.
    pub done: SimTime,
    /// Silent faults injected into this transfer (simulation bookkeeping
    /// for the integrity layer; the modelled program cannot see this
    /// without a checksum).
    pub silent_faults: u64,
}

/// One entry of a scatter/gather descriptor list.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SgEntry {
    /// Source offset in the caller's buffer.
    pub src_offset: usize,
    /// Destination offset in the mapped segment.
    pub dst_offset: usize,
    /// Bytes to move.
    pub len: usize,
}

/// Handle for DMA operations through one mapping.
#[derive(Debug)]
pub struct DmaEngine {
    fabric: Arc<Fabric>,
    mapping: Mapping,
}

impl DmaEngine {
    pub(crate) fn new(fabric: Arc<Fabric>, mapping: Mapping) -> Self {
        DmaEngine { fabric, mapping }
    }

    /// True if the mapping is intra-node.
    pub fn is_local(&self) -> bool {
        self.mapping.is_local()
    }

    fn stream_cost(&self, bytes: u64) -> SimDuration {
        let params = self.fabric.params();
        let bw = if self.mapping.is_local() {
            params.cache.mem_copy
        } else {
            self.fabric.links().effective_bandwidth(
                params,
                &self.mapping.route,
                params.dma_bandwidth,
            )
        };
        bw.cost(bytes)
    }

    /// Write `data` to `offset` by DMA. The clock advances only by the
    /// setup cost; the returned completion tells when the data has fully
    /// arrived (callers wanting synchronous semantics merge it).
    pub fn write(
        &self,
        clock: &mut Clock,
        offset: usize,
        data: &[u8],
    ) -> Result<DmaCompletion, SciError> {
        self.transfer(
            clock,
            &[SgEntry {
                src_offset: 0,
                dst_offset: offset,
                len: data.len(),
            }],
            data,
            true,
        )
    }

    /// Read `dst.len()` bytes from `offset` by DMA (the engine can fetch
    /// remote data without stalling the CPU, unlike PIO reads).
    pub fn read(
        &self,
        clock: &mut Clock,
        offset: usize,
        dst: &mut [u8],
    ) -> Result<DmaCompletion, SciError> {
        let entries = [SgEntry {
            src_offset: offset,
            dst_offset: 0,
            len: dst.len(),
        }];
        let params = self.fabric.params();
        if dst.is_empty() {
            return Ok(DmaCompletion {
                cpu_free: clock.now(),
                done: clock.now(),
                silent_faults: 0,
            });
        }
        self.mapping
            .segment
            .mem()
            .read(entries[0].src_offset, dst)?;
        let txns = dst.len().div_ceil(params.stream_buffer_bytes) as u64;
        let outcome = match self
            .fabric
            .faults()
            .transact_bulk(&self.mapping.route, txns)
        {
            Ok(o) => o,
            Err(f) => {
                clock.advance(f.wasted);
                return Err(f.error);
            }
        };
        // Silent read faults: data flows owner → importer; only bit flips
        // (a lost read transaction retries inside the engine).
        let pair = (self.mapping.segment.owner().0, self.mapping.importer.0);
        let faults =
            self.fabric
                .faults()
                .silent_faults(pair, params.stream_buffer_bytes, dst.len(), false);
        for f in &faults {
            if let SilentFault::BitFlip { pos, mask } = *f {
                dst[pos] ^= mask;
            }
        }
        clock.advance(params.dma_setup);
        let cpu_free = clock.now();
        let done = cpu_free
            + self.stream_cost(dst.len() as u64)
            + params.wire_latency(self.mapping.route.hops())
            + outcome.extra_latency;
        self.fabric
            .links()
            .account(params, &self.mapping.route, dst.len() as u64);
        Ok(DmaCompletion {
            cpu_free,
            done,
            silent_faults: faults.len() as u64,
        })
    }

    /// Scatter/gather write: one descriptor list, one setup cost, one
    /// stream. This is the "non-contiguous transfers with DMA-based
    /// interconnects" extension from the paper's outlook (§6).
    pub fn write_sg(
        &self,
        clock: &mut Clock,
        entries: &[SgEntry],
        src: &[u8],
    ) -> Result<DmaCompletion, SciError> {
        self.transfer(clock, entries, src, true)
    }

    fn transfer(
        &self,
        clock: &mut Clock,
        entries: &[SgEntry],
        src: &[u8],
        is_write: bool,
    ) -> Result<DmaCompletion, SciError> {
        debug_assert!(is_write);
        let params = self.fabric.params();
        let total: usize = entries.iter().map(|e| e.len).sum();
        if total == 0 {
            return Ok(DmaCompletion {
                cpu_free: clock.now(),
                done: clock.now(),
                silent_faults: 0,
            });
        }
        // Validate every entry first so errors surface before any time is
        // charged or fault dice roll.
        for e in entries {
            let end = e.src_offset + e.len;
            assert!(end <= src.len(), "scatter/gather source out of range");
            self.mapping
                .segment
                .mem()
                .check_range(e.dst_offset, e.len)?;
        }
        let txns = (total.div_ceil(params.stream_buffer_bytes)) as u64;
        let outcome = match self
            .fabric
            .faults()
            .transact_bulk(&self.mapping.route, txns)
        {
            Ok(o) => o,
            Err(f) => {
                clock.advance(f.wasted);
                return Err(f.error);
            }
        };
        // Land the bytes, applying silent faults rolled over the gathered
        // byte stream (fault positions are stream positions, so a dropped
        // transaction can straddle scatter/gather entry boundaries).
        let pair = (self.mapping.importer.0, self.mapping.segment.owner().0);
        let faults =
            self.fabric
                .faults()
                .silent_faults(pair, params.stream_buffer_bytes, total, true);
        let mut stream_pos = 0usize;
        for e in entries {
            let end = e.src_offset + e.len;
            write_with_faults(
                self.mapping.segment.mem(),
                e.dst_offset,
                &src[e.src_offset..end],
                stream_pos,
                &faults,
            )?;
            stream_pos += e.len;
        }
        // Descriptor build cost grows mildly with list length.
        let setup = params.dma_setup
            + SimDuration::from_ns(200).saturating_mul(entries.len().saturating_sub(1) as u64);
        clock.advance(setup);
        let cpu_free = clock.now();
        let done = cpu_free
            + self.stream_cost(total as u64)
            + params.wire_latency(self.mapping.route.hops())
            + outcome.extra_latency;
        self.fabric
            .links()
            .account(params, &self.mapping.route, total as u64);
        Ok(DmaCompletion {
            cpu_free,
            done,
            silent_faults: faults.len() as u64,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topology::{NodeId, Topology};
    use crate::FabricSpec;
    use simclock::Bandwidth;

    fn fabric() -> Arc<Fabric> {
        Fabric::new(FabricSpec {
            topology: Topology::ringlet(4),
            ..FabricSpec::default()
        })
    }

    #[test]
    fn dma_write_moves_bytes() {
        let f = fabric();
        let seg = f.export(NodeId(1), 4096);
        let dma = f.dma_engine(NodeId(0), &seg);
        let mut c = Clock::new();
        let done = dma.write(&mut c, 128, &[9u8; 512]).unwrap();
        assert!(done.done > done.cpu_free);
        assert_eq!(
            seg.mem().checksum(128, 512).unwrap(),
            crate::mem::fnv1a(&[9u8; 512])
        );
    }

    #[test]
    fn cpu_freed_after_setup_only() {
        let f = fabric();
        let seg = f.export(NodeId(1), 1 << 21);
        let dma = f.dma_engine(NodeId(0), &seg);
        let mut c = Clock::new();
        let data = vec![1u8; 1 << 20];
        let comp = dma.write(&mut c, 0, &data).unwrap();
        // CPU time is just the setup, far below the streaming time.
        let cpu = comp.cpu_free - SimTime::ZERO;
        let wire = comp.done - comp.cpu_free;
        assert!(wire.as_ps() > 10 * cpu.as_ps());
    }

    #[test]
    fn dma_beats_pio_for_large_transfers_only() {
        let f = fabric();
        let seg = f.export(NodeId(1), 4 << 20);
        let run_pio = |len: usize| {
            let mut s = f.pio_stream(NodeId(0), &seg, len);
            let mut c = Clock::new();
            s.write(&mut c, 0, &vec![0u8; len]).unwrap();
            s.barrier(&mut c);
            c.now() - SimTime::ZERO
        };
        let run_dma = |len: usize| {
            let dma = f.dma_engine(NodeId(0), &seg);
            let mut c = Clock::new();
            let comp = dma.write(&mut c, 0, &vec![0u8; len]).unwrap();
            comp.done - SimTime::ZERO
        };
        // Small transfer: DMA setup dominates, PIO wins.
        assert!(run_pio(256) < run_dma(256));
        // Large transfer: DMA streams while PIO is memory-limited.
        let large = 2 << 20;
        assert!(run_dma(large) < run_pio(large), "DMA should win at 2 MiB");
    }

    #[test]
    fn scatter_gather_single_setup() {
        let f = fabric();
        let seg = f.export(NodeId(1), 1 << 16);
        let dma = f.dma_engine(NodeId(0), &seg);
        let src: Vec<u8> = (0..4096u32).map(|i| i as u8).collect();
        let entries: Vec<SgEntry> = (0..16)
            .map(|i| SgEntry {
                src_offset: i * 256,
                dst_offset: i * 1024,
                len: 256,
            })
            .collect();
        let mut c = Clock::new();
        let comp = dma.write_sg(&mut c, &entries, &src).unwrap();
        assert!(comp.done > comp.cpu_free);
        // Verify block 5 landed at stride 1024.
        let mut out = [0u8; 256];
        seg.mem().read(5 * 1024, &mut out).unwrap();
        assert_eq!(&out[..], &src[5 * 256..6 * 256]);
    }

    #[test]
    fn dma_read_does_not_stall_like_pio() {
        let f = fabric();
        let seg = f.export(NodeId(1), 1 << 20);
        seg.mem().fill(0, 1 << 20, 0x5A).unwrap();
        let len = 512 * 1024;
        let dma = f.dma_engine(NodeId(0), &seg);
        let mut cd = Clock::new();
        let mut buf = vec![0u8; len];
        let comp = dma.read(&mut cd, 0, &mut buf).unwrap();
        assert!(buf.iter().all(|&b| b == 0x5A));

        let rd = f.pio_reader(NodeId(0), &seg);
        let mut cp = Clock::new();
        let mut buf2 = vec![0u8; len];
        rd.read(&mut cp, 0, &mut buf2).unwrap();
        // DMA read completes far earlier than a stalled PIO read loop.
        let dma_total = comp.done - SimTime::ZERO;
        let pio_total = cp.now() - SimTime::ZERO;
        assert!(dma_total.as_ps() * 3 < pio_total.as_ps());
    }

    #[test]
    fn empty_transfers_cost_nothing() {
        let f = fabric();
        let seg = f.export(NodeId(1), 64);
        let dma = f.dma_engine(NodeId(0), &seg);
        let mut c = Clock::new();
        let comp = dma.write(&mut c, 0, &[]).unwrap();
        assert_eq!(comp.done, SimTime::ZERO);
        let comp = dma.read(&mut c, 0, &mut []).unwrap();
        assert_eq!(comp.done, SimTime::ZERO);
    }

    #[test]
    fn dma_applies_silent_faults_across_sg_entries() {
        let f = Fabric::new(FabricSpec {
            topology: Topology::ringlet(4),
            faults: crate::fault::FaultConfig::silent(1.0, 0.0),
            ..FabricSpec::default()
        });
        let seg = f.export(NodeId(1), 1 << 16);
        let dma = f.dma_engine(NodeId(0), &seg);
        let src = vec![0u8; 4096];
        let entries: Vec<SgEntry> = (0..16)
            .map(|i| SgEntry {
                src_offset: i * 256,
                dst_offset: i * 1024,
                len: 256,
            })
            .collect();
        let mut c = Clock::new();
        let comp = dma.write_sg(&mut c, &entries, &src).unwrap();
        // 4096 bytes / 64 B transactions at rate 1.0 ⇒ 64 flips.
        assert_eq!(comp.silent_faults, 64);
        let snap = seg.mem().snapshot();
        let flipped: usize = (0..16)
            .map(|i| {
                snap[i * 1024..i * 1024 + 256]
                    .iter()
                    .filter(|&&b| b != 0)
                    .count()
            })
            .sum();
        assert_eq!(flipped, 64, "flips land inside the scattered blocks");
    }

    #[test]
    fn dma_bandwidth_close_to_configured() {
        let f = fabric();
        let seg = f.export(NodeId(1), 8 << 20);
        let dma = f.dma_engine(NodeId(0), &seg);
        let len = 8 << 20;
        let mut c = Clock::new();
        let comp = dma.write(&mut c, 0, &vec![0u8; len]).unwrap();
        let bw = Bandwidth::observed(len as u64, comp.done - SimTime::ZERO);
        let target = f.params().dma_bandwidth.mib_per_sec();
        assert!(
            (bw.mib_per_sec() - target).abs() / target < 0.1,
            "got {bw}, want ~{target}"
        );
    }
}
