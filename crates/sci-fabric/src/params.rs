//! Calibration constants for the simulated SCI fabric.
//!
//! The defaults model the paper's testbed: Dolphin D330 PCI-SCI adapters in
//! dual Pentium-III 800 MHz nodes (ServerWorks ServerSet III LE, 64 bit /
//! 66 MHz PCI) on a single 166 MHz SCI ringlet. Every constant is a knob so
//! ablation benches and the 200 MHz-link experiment of Table 2 can vary them.
//!
//! The model reproduces the *mechanisms* the paper attributes its results
//! to, rather than hard-coding end results:
//!
//! * **Stream buffers** on the PCI-SCI adapter gather consecutive ascending
//!   stores into large (64 B) SCI transactions; non-consecutive stores each
//!   pay a transaction emission overhead.
//! * **Write combining** in the P-III CPU uses 32-byte buffers; strided
//!   stores whose start is not 32-byte aligned split into partial
//!   transactions with a hefty penalty (§4.3 of the paper: 5–28 MiB/s at
//!   8 B access depending on stride).
//! * **Remote reads stall the CPU** until data returns, so read bandwidth
//!   is a small fraction of write bandwidth (Figure 1).
//! * **DMA** needs an expensive descriptor post but then streams
//!   independently of the CPU.
//! * The **local memory system** bounds everything: the LE chipset's modest
//!   copy bandwidth causes the PIO-write dip beyond 128 kiB in Figure 1.

use simclock::{Bandwidth, SimDuration};

/// Size classes of the node's cache hierarchy, used to model copy bandwidth
/// as a function of working-set size (this produces the paper's observation
/// that intra-node `direct_pack_ff` can beat contiguous copies for
/// cache-resident block sizes, §3.4).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct CacheModel {
    /// L1 data cache capacity in bytes (P-III: 16 kiB).
    pub l1_bytes: usize,
    /// L2 cache capacity in bytes (P-III Coppermine: 256 kiB).
    pub l2_bytes: usize,
    /// Copy bandwidth when the working set fits in L1.
    pub l1_copy: Bandwidth,
    /// Copy bandwidth when the working set fits in L2.
    pub l2_copy: Bandwidth,
    /// Copy bandwidth from/to main memory (ServerSet III LE: ~290 MiB/s).
    pub mem_copy: Bandwidth,
    /// Fixed per-copy-call overhead (loop setup, address arithmetic).
    pub per_block_overhead: SimDuration,
}

impl CacheModel {
    /// P-III 800 / ServerSet III LE defaults.
    pub fn pentium3_serverset_le() -> Self {
        CacheModel {
            l1_bytes: 16 * 1024,
            l2_bytes: 256 * 1024,
            l1_copy: Bandwidth::from_mib_per_sec(1600),
            l2_copy: Bandwidth::from_mib_per_sec(800),
            mem_copy: Bandwidth::from_mib_per_sec(290),
            per_block_overhead: SimDuration::from_ns(40),
        }
    }

    /// Copy bandwidth for a given working-set size.
    pub fn copy_bw(&self, working_set: usize) -> Bandwidth {
        if working_set <= self.l1_bytes {
            self.l1_copy
        } else if working_set <= self.l2_bytes {
            self.l2_copy
        } else {
            self.mem_copy
        }
    }

    /// Cost of one local copy of `len` bytes with working set `working_set`.
    pub fn copy_cost(&self, len: usize, working_set: usize) -> SimDuration {
        self.per_block_overhead + self.copy_bw(working_set).cost(len as u64)
    }
}

/// All calibration constants of the SCI fabric model.
#[derive(Clone, Debug, PartialEq)]
pub struct SciParams {
    // ---- PIO write path (transparent remote stores) ----
    /// SCI transaction payload gathered by the adapter's stream buffers.
    pub stream_buffer_bytes: usize,
    /// CPU write-combine buffer size (P-III: 32 bytes). Strided stores not
    /// aligned to this granularity pay `wc_misalign_factor`.
    pub write_combine_bytes: usize,
    /// Peak remote-write bandwidth for long consecutive ascending streams.
    pub pio_write_peak: Bandwidth,
    /// Remote-write bandwidth once the source working set exceeds L2 and
    /// the local memory system becomes the bottleneck (Figure 1 dip).
    pub pio_write_mem_limited: Bandwidth,
    /// Overhead to emit one SCI transaction that was *not* merged into an
    /// ongoing stream (stream-buffer flush + new burst setup).
    pub txn_overhead: SimDuration,
    /// Multiplier on `txn_overhead` for write-combine-misaligned bursts.
    /// A value of 1.0 means write combining is disabled (no misalignment
    /// cliff exists without WC buffers).
    pub wc_misalign_factor: f64,
    /// Cost of one uncombined 8-byte store when a misaligned burst
    /// thrashes the write-combine buffers: the whole access degrades to
    /// individual partial flushes (§4.3: 256 B accesses drop to ~7 MiB/s
    /// at misaligned strides while aligned ones reach 162 MiB/s).
    pub uncombined_store_cost: SimDuration,
    /// Smallest efficient SCI transaction payload (16 B); consecutive
    /// stores smaller than this cannot fill even one transaction before
    /// the stream buffer's gather window closes.
    pub min_txn_bytes: usize,
    /// Flush penalty for a burst-continuing store below `min_txn_bytes`:
    /// the gap while the CPU gathers the next scattered source block
    /// forces the adapter to emit a padded minimum-size transaction
    /// ("the relatively high latency of remote memory accesses with
    /// 8 byte granularity", §3.4).
    pub sub_txn_flush: SimDuration,
    /// Per missing byte below `stream_buffer_bytes`, for continuing
    /// stores between `min_txn_bytes` and the stream-buffer size: partial
    /// stream-buffer flushes cost proportionally to the unfilled part.
    pub partial_flush_per_byte: SimDuration,
    /// CPU cost to restart the copy loop for every burst-continuing store
    /// (address generation, load of the next scattered source block).
    pub block_issue_overhead: SimDuration,
    /// Bandwidth factor when write combining is disabled entirely
    /// (the paper measured roughly −50 %).
    pub wc_disabled_factor: f64,
    /// Coalescing window of the host-side store batcher: adjacent or
    /// overlapping leaf stores are staged until a batch-aligned boundary
    /// is crossed, then flushed as one SCI transaction burst. Matches the
    /// adapter's stream-buffer payload so every flushed chunk fills a
    /// whole transaction.
    pub wc_batch_bytes: usize,
    /// CPU cost to append one leaf store to a pending batch (bounds check
    /// plus a register-speed copy into the write-combine window) — the
    /// batched replacement for the per-store issue/flush penalties that
    /// small scattered stores otherwise pay.
    pub wc_store_cost: SimDuration,
    /// One-way wire propagation per ring segment (cable + LC-2 hop).
    pub hop_latency: SimDuration,
    /// Fixed PCI-bridge + adapter traversal latency per transaction.
    pub adapter_latency: SimDuration,

    // ---- PIO read path ----
    /// CPU stall for one remote read transaction (round trip through the
    /// fabric; dominates read bandwidth).
    pub read_stall: SimDuration,
    /// Payload returned per read transaction.
    pub read_txn_bytes: usize,

    // ---- DMA engine ----
    /// Cost to post a DMA descriptor (ioctl + doorbell).
    pub dma_setup: SimDuration,
    /// DMA streaming bandwidth.
    pub dma_bandwidth: Bandwidth,
    /// Minimum DMA alignment; unaligned requests fall back to PIO.
    pub dma_align: usize,

    // ---- Synchronisation ----
    /// Cost of a store barrier (flush stream buffers, check error counters).
    pub store_barrier: SimDuration,
    /// Cost of one SISCI sequence-check CSR round trip
    /// (`SCIStartSequence`/`SCICheckSequence`): a PCI config-space read of
    /// the adapter's error counters.
    pub sequence_check_cost: SimDuration,
    /// Cost to trigger + deliver a remote interrupt (used by the emulation
    /// path of one-sided communication).
    pub remote_interrupt: SimDuration,

    /// Extra latency per remote access while riding a degraded failover
    /// route (maintenance bypass through the switch ports after a link
    /// failure): the bypass direction has no stream-buffer affinity, so
    /// each access pays an extra arbitration round.
    pub degraded_route_latency: SimDuration,

    // ---- Ring / link model ----
    /// Nominal per-link bandwidth (166 MHz: 633 MiB/s).
    pub link_bandwidth: Bandwidth,
    /// Sustained injection cap of one node doing MPI-level remote stores
    /// (PCI arbitration + protocol engine; the paper's 120 MiB/s plateau).
    pub node_injection_cap: Bandwidth,
    /// Offered-load level (fraction of nominal) at which goodput starts to
    /// degrade from flow control and retries.
    pub saturation_onset: f64,
    /// Goodput slope beyond the onset: goodput = 1 − slope·(load − onset).
    pub saturation_slope: f64,
    /// Fraction of data traffic echoed as flow-control packets.
    pub flow_control_overhead: f64,

    // ---- Local node ----
    /// Cache/copy model of the host CPU.
    pub cache: CacheModel,
}

impl SciParams {
    /// The paper's testbed: Dolphin D330 on a 166 MHz ringlet.
    pub fn dolphin_d330() -> Self {
        SciParams {
            stream_buffer_bytes: 64,
            write_combine_bytes: 32,
            pio_write_peak: Bandwidth::from_mib_per_sec(230),
            pio_write_mem_limited: Bandwidth::from_mib_per_sec(160),
            txn_overhead: SimDuration::from_ns(290),
            wc_misalign_factor: 4.5,
            uncombined_store_cost: SimDuration::from_ns(1050),
            min_txn_bytes: 16,
            sub_txn_flush: SimDuration::from_ns(620),
            partial_flush_per_byte: SimDuration::from_ps(1500),
            block_issue_overhead: SimDuration::from_ns(40),
            wc_disabled_factor: 0.5,
            wc_batch_bytes: 64,
            wc_store_cost: SimDuration::from_ns(8),
            hop_latency: SimDuration::from_ns(55),
            adapter_latency: SimDuration::from_ns(480),
            read_stall: SimDuration::from_us_f64(3.4),
            read_txn_bytes: 64,
            dma_setup: SimDuration::from_us(22),
            dma_bandwidth: Bandwidth::from_mib_per_sec(185),
            dma_align: 8,
            store_barrier: SimDuration::from_ns(600),
            sequence_check_cost: SimDuration::from_us_f64(1.1),
            remote_interrupt: SimDuration::from_us(14),
            degraded_route_latency: SimDuration::from_us(2),
            link_bandwidth: Bandwidth::from_mib_per_sec(633),
            node_injection_cap: Bandwidth::from_mib_per_sec(121),
            saturation_onset: 0.90,
            saturation_slope: 0.336,
            flow_control_overhead: 0.08,
            cache: CacheModel::pentium3_serverset_le(),
        }
    }

    /// The Table 2 follow-up experiment: link frequency raised to 200 MHz
    /// (nominal 762 MiB/s), everything else unchanged.
    pub fn with_link_200mhz(mut self) -> Self {
        self.link_bandwidth = Bandwidth::from_mib_per_sec(762);
        self
    }

    /// Footnote 2 of the paper: on the HE variant of the ServerSet III the
    /// local memory system no longer limits PIO writes beyond 128 kiB.
    pub fn with_he_chipset(mut self) -> Self {
        self.pio_write_mem_limited = self.pio_write_peak;
        self.cache.mem_copy = Bandwidth::from_mib_per_sec(520);
        self
    }

    /// Disable CPU write combining (§4.3: avoids the stride-dependent
    /// performance drops but halves overall bandwidth).
    pub fn with_write_combining_disabled(mut self) -> Self {
        self.pio_write_peak = self.pio_write_peak.scale(self.wc_disabled_factor);
        self.pio_write_mem_limited = self.pio_write_mem_limited.scale(self.wc_disabled_factor);
        // Without WC there is no misalignment cliff.
        self.wc_misalign_factor = 1.0;
        self
    }

    /// Effective PIO write streaming bandwidth given the size of the source
    /// working set. Models the Figure 1 dip "beyond 128 kiB": source reads
    /// and the write stream together exceed the L2 capacity once the
    /// working set passes half of it, and the LE chipset's memory system
    /// becomes the bottleneck.
    pub fn pio_stream_bw(&self, source_working_set: usize) -> Bandwidth {
        if source_working_set * 2 > self.cache.l2_bytes {
            self.pio_write_mem_limited
        } else {
            self.pio_write_peak
        }
    }

    /// One-way propagation latency across `hops` ring segments.
    pub fn wire_latency(&self, hops: usize) -> SimDuration {
        self.adapter_latency + self.hop_latency.saturating_mul(hops as u64)
    }

    /// Ring goodput fraction at a given offered load (fraction of nominal
    /// link bandwidth). Calibrated against Table 2: ~79 % goodput at 152 %
    /// load.
    pub fn ring_goodput(&self, offered_load: f64) -> f64 {
        if offered_load <= self.saturation_onset {
            1.0
        } else {
            (1.0 - self.saturation_slope * (offered_load - self.saturation_onset)).max(0.25)
        }
    }
}

impl Default for SciParams {
    fn default() -> Self {
        SciParams::dolphin_d330()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cache_model_tiers() {
        let c = CacheModel::pentium3_serverset_le();
        assert_eq!(c.copy_bw(1024), c.l1_copy);
        assert_eq!(c.copy_bw(64 * 1024), c.l2_copy);
        assert_eq!(c.copy_bw(1024 * 1024), c.mem_copy);
    }

    #[test]
    fn copy_cost_includes_overhead() {
        let c = CacheModel::pentium3_serverset_le();
        let zero = c.copy_cost(0, 0);
        assert_eq!(zero, c.per_block_overhead);
        assert!(c.copy_cost(4096, 4096) > zero);
    }

    #[test]
    fn read_is_much_slower_than_write() {
        let p = SciParams::default();
        let read_bw = p.read_txn_bytes as f64 / p.read_stall.as_secs_f64() / (1024.0 * 1024.0);
        // Figure 1: remote read bandwidth is a small fraction of write.
        assert!(read_bw * 5.0 < p.pio_write_peak.mib_per_sec());
    }

    #[test]
    fn write_bandwidth_dips_past_l2() {
        let p = SciParams::default();
        assert!(p.pio_stream_bw(16 * 1024) > p.pio_stream_bw(1024 * 1024));
        let he = SciParams::default().with_he_chipset();
        assert_eq!(he.pio_stream_bw(16 * 1024), he.pio_stream_bw(1024 * 1024));
    }

    #[test]
    fn goodput_curve_matches_table2_anchor() {
        let p = SciParams::default();
        assert_eq!(p.ring_goodput(0.5), 1.0);
        assert_eq!(p.ring_goodput(0.9), 1.0);
        let g = p.ring_goodput(1.525);
        assert!((g - 0.79).abs() < 0.01, "goodput at 152.5% load was {g}");
        // Never collapses to zero.
        assert!(p.ring_goodput(10.0) >= 0.25);
    }

    #[test]
    fn wc_disabled_halves_bandwidth_but_flattens() {
        let p = SciParams::default();
        let q = p.clone().with_write_combining_disabled();
        assert!(q.pio_write_peak.mib_per_sec() < 0.6 * p.pio_write_peak.mib_per_sec());
        assert_eq!(q.wc_misalign_factor, 1.0);
    }

    #[test]
    fn wc_batch_matches_stream_buffer_and_beats_per_store_penalties() {
        let p = SciParams::default();
        // The batch window fills whole SCI transactions.
        assert_eq!(p.wc_batch_bytes, p.stream_buffer_bytes);
        // Appending to a batch must be far cheaper than the penalties it
        // replaces, or batching could never win.
        assert!(p.wc_store_cost < p.sub_txn_flush);
        assert!(p.wc_store_cost < p.block_issue_overhead);
    }

    #[test]
    fn link_upgrade_changes_only_link() {
        let p = SciParams::default();
        let q = p.clone().with_link_200mhz();
        assert_eq!(q.link_bandwidth, Bandwidth::from_mib_per_sec(762));
        assert_eq!(q.node_injection_cap, p.node_injection_cap);
    }

    #[test]
    fn wire_latency_scales_with_hops() {
        let p = SciParams::default();
        let one = p.wire_latency(1);
        let four = p.wire_latency(4);
        assert_eq!(
            four.as_ps() - p.adapter_latency.as_ps(),
            4 * (one.as_ps() - p.adapter_latency.as_ps())
        );
    }
}
