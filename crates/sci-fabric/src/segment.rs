//! Exported memory segments and their registry.
//!
//! An SCI node makes a chunk of physical memory remotely accessible by
//! *exporting* a segment; peers *import* it, mapping it into their address
//! space. Imports carry the route to the owner, which determines latency
//! and which ring segments the traffic loads.

use crate::mem::SharedMem;
use crate::topology::{NodeId, Route};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::sync::RwLock;

/// Globally unique identifier of an exported segment.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct SegmentId(pub u64);

/// An address inside the global SCI address space.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct SciAddr {
    /// The segment containing the byte.
    pub segment: SegmentId,
    /// Byte offset within the segment.
    pub offset: usize,
}

/// One exported memory segment.
#[derive(Debug)]
pub struct Segment {
    id: SegmentId,
    owner: NodeId,
    mem: SharedMem,
}

impl Segment {
    pub(crate) fn new(id: SegmentId, owner: NodeId, len: usize) -> Self {
        Segment {
            id,
            owner,
            mem: SharedMem::new(len),
        }
    }

    /// The segment's id.
    pub fn id(&self) -> SegmentId {
        self.id
    }

    /// The exporting node.
    pub fn owner(&self) -> NodeId {
        self.owner
    }

    /// Capacity in bytes.
    pub fn len(&self) -> usize {
        self.mem.len()
    }

    /// True if the segment has zero capacity.
    pub fn is_empty(&self) -> bool {
        self.mem.is_empty()
    }

    /// The backing memory. The owner accesses it at local-memory cost;
    /// importers must go through PIO/DMA operations which model fabric
    /// cost.
    pub fn mem(&self) -> &SharedMem {
        &self.mem
    }
}

/// Registry of all exported segments of one fabric.
#[derive(Debug, Default)]
pub struct SegmentRegistry {
    next_id: AtomicU64,
    segments: RwLock<HashMap<u64, Arc<Segment>>>,
}

impl SegmentRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        SegmentRegistry::default()
    }

    /// Export a new segment owned by `owner`.
    pub fn export(&self, owner: NodeId, len: usize) -> Arc<Segment> {
        let id = SegmentId(self.next_id.fetch_add(1, Ordering::Relaxed));
        let seg = Arc::new(Segment::new(id, owner, len));
        self.segments
            .write()
            .unwrap()
            .insert(id.0, Arc::clone(&seg));
        seg
    }

    /// Look up a segment by id.
    pub fn get(&self, id: SegmentId) -> Option<Arc<Segment>> {
        self.segments.read().unwrap().get(&id.0).cloned()
    }

    /// Withdraw a segment from remote access (unexport). Outstanding
    /// `Arc` handles keep the memory alive but new imports fail.
    pub fn unexport(&self, id: SegmentId) -> bool {
        self.segments.write().unwrap().remove(&id.0).is_some()
    }

    /// Number of currently exported segments.
    pub fn count(&self) -> usize {
        self.segments.read().unwrap().len()
    }
}

/// A remote (or local) segment mapped by an importing node, together with
/// the route its traffic takes.
#[derive(Debug, Clone)]
pub struct Mapping {
    /// The mapped segment.
    pub segment: Arc<Segment>,
    /// The importing node.
    pub importer: NodeId,
    /// Route from importer to owner (empty if intra-node).
    pub route: Route,
}

impl Mapping {
    /// True if importer and owner are the same node, i.e. access is plain
    /// local memory.
    pub fn is_local(&self) -> bool {
        self.route.is_local()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topology::Topology;

    #[test]
    fn export_assigns_unique_ids() {
        let reg = SegmentRegistry::new();
        let a = reg.export(NodeId(0), 128);
        let b = reg.export(NodeId(1), 128);
        assert_ne!(a.id(), b.id());
        assert_eq!(reg.count(), 2);
    }

    #[test]
    fn lookup_and_unexport() {
        let reg = SegmentRegistry::new();
        let a = reg.export(NodeId(0), 64);
        assert!(reg.get(a.id()).is_some());
        assert!(reg.unexport(a.id()));
        assert!(reg.get(a.id()).is_none());
        assert!(!reg.unexport(a.id()));
        // The original handle still works.
        assert_eq!(a.len(), 64);
    }

    #[test]
    fn segment_properties() {
        let reg = SegmentRegistry::new();
        let s = reg.export(NodeId(3), 256);
        assert_eq!(s.owner(), NodeId(3));
        assert_eq!(s.len(), 256);
        assert!(!s.is_empty());
        s.mem().write(0, &[42]).unwrap();
        let mut b = [0u8];
        s.mem().read(0, &mut b).unwrap();
        assert_eq!(b[0], 42);
    }

    #[test]
    fn mapping_locality() {
        let topo = Topology::ringlet(4);
        let reg = SegmentRegistry::new();
        let s = reg.export(NodeId(2), 64);
        let local = Mapping {
            segment: Arc::clone(&s),
            importer: NodeId(2),
            route: topo.route(NodeId(2), NodeId(2)),
        };
        let remote = Mapping {
            segment: s,
            importer: NodeId(0),
            route: topo.route(NodeId(0), NodeId(2)),
        };
        assert!(local.is_local());
        assert!(!remote.is_local());
    }

    #[test]
    fn concurrent_exports() {
        use std::thread;
        let reg = Arc::new(SegmentRegistry::new());
        let handles: Vec<_> = (0..8)
            .map(|i| {
                let reg = Arc::clone(&reg);
                thread::spawn(move || {
                    (0..100)
                        .map(|_| reg.export(NodeId(i), 16).id())
                        .collect::<Vec<_>>()
                })
            })
            .collect();
        let mut all: Vec<SegmentId> = handles
            .into_iter()
            .flat_map(|h| h.join().unwrap())
            .collect();
        let n = all.len();
        all.sort();
        all.dedup();
        assert_eq!(all.len(), n, "duplicate segment ids handed out");
    }
}
