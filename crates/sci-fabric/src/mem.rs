//! Shared byte memory backing exported SCI segments.
//!
//! Real SCI segments are physical memory mapped into multiple address
//! spaces. Here all simulated ranks live in one process, so a segment is a
//! heap buffer that several rank threads may touch. Access is bounds-checked
//! and goes through [`core::cell::UnsafeCell`]; the simulation's MPI layer
//! enforces the same access discipline the MPI standard demands of user
//! programs (no conflicting concurrent access within an epoch), and every
//! cross-thread hand-off in the runtime happens through synchronising
//! channels/locks, which establish the necessary happens-before edges.
//! Conflicting unsynchronised access is a caller bug and produces torn data
//! — exactly as on the real interconnect.

use core::cell::UnsafeCell;
use core::fmt;

/// Error type for out-of-bounds segment access.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct OutOfBounds {
    /// Requested offset.
    pub offset: usize,
    /// Requested length.
    pub len: usize,
    /// Capacity of the memory region.
    pub capacity: usize,
}

impl fmt::Display for OutOfBounds {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "access [{}, {}) exceeds segment of {} bytes",
            self.offset,
            self.offset + self.len,
            self.capacity
        )
    }
}

impl std::error::Error for OutOfBounds {}

/// A fixed-size shared byte buffer.
pub struct SharedMem {
    buf: Box<[UnsafeCell<u8>]>,
}

// SAFETY: all access goes through raw-pointer copies below; the runtime
// guarantees conflicting accesses are separated by synchronisation. See the
// module documentation.
unsafe impl Send for SharedMem {}
unsafe impl Sync for SharedMem {}

impl SharedMem {
    /// Allocate a zero-initialised buffer of `len` bytes.
    pub fn new(len: usize) -> Self {
        let mut v = Vec::with_capacity(len);
        v.resize_with(len, || UnsafeCell::new(0u8));
        SharedMem {
            buf: v.into_boxed_slice(),
        }
    }

    /// Capacity in bytes.
    #[inline]
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// True if the buffer has zero capacity.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Validate that `[offset, offset+len)` lies inside the buffer without
    /// touching any bytes. The fault-aware transfer paths use this to
    /// surface out-of-bounds accesses *before* rolling fault dice or
    /// charging virtual time.
    #[inline]
    pub fn check_range(&self, offset: usize, len: usize) -> Result<(), OutOfBounds> {
        self.check(offset, len)
    }

    #[inline]
    fn check(&self, offset: usize, len: usize) -> Result<(), OutOfBounds> {
        if offset
            .checked_add(len)
            .is_none_or(|end| end > self.buf.len())
        {
            return Err(OutOfBounds {
                offset,
                len,
                capacity: self.buf.len(),
            });
        }
        Ok(())
    }

    /// Copy `src` into the buffer at `offset`.
    pub fn write(&self, offset: usize, src: &[u8]) -> Result<(), OutOfBounds> {
        self.check(offset, src.len())?;
        // SAFETY: bounds checked above; synchronisation discipline per
        // module docs.
        unsafe {
            let dst = self.buf.as_ptr().add(offset) as *mut u8;
            core::ptr::copy_nonoverlapping(src.as_ptr(), dst, src.len());
        }
        Ok(())
    }

    /// Copy `dst.len()` bytes from the buffer at `offset` into `dst`.
    pub fn read(&self, offset: usize, dst: &mut [u8]) -> Result<(), OutOfBounds> {
        self.check(offset, dst.len())?;
        // SAFETY: bounds checked above; synchronisation discipline per
        // module docs.
        unsafe {
            let src = self.buf.as_ptr().add(offset) as *const u8;
            core::ptr::copy_nonoverlapping(src, dst.as_mut_ptr(), dst.len());
        }
        Ok(())
    }

    /// Fill `[offset, offset+len)` with `value`.
    pub fn fill(&self, offset: usize, len: usize, value: u8) -> Result<(), OutOfBounds> {
        self.check(offset, len)?;
        // SAFETY: bounds checked above.
        unsafe {
            let dst = self.buf.as_ptr().add(offset) as *mut u8;
            core::ptr::write_bytes(dst, value, len);
        }
        Ok(())
    }

    /// Copy `len` bytes within the buffer (regions may not overlap in any
    /// sane MPI program; overlap is handled correctly anyway).
    pub fn copy_within(&self, src: usize, dst: usize, len: usize) -> Result<(), OutOfBounds> {
        self.check(src, len)?;
        self.check(dst, len)?;
        // SAFETY: bounds checked above; copy handles overlap.
        unsafe {
            let base = self.buf.as_ptr() as *mut u8;
            core::ptr::copy(base.add(src), base.add(dst), len);
        }
        Ok(())
    }

    /// Read a copy of the whole buffer (test/diagnostic helper).
    pub fn snapshot(&self) -> Vec<u8> {
        let mut v = vec![0u8; self.len()];
        // Cannot fail: exact length.
        let _ = self.read(0, &mut v);
        v
    }

    /// FNV-1a checksum of a range, used by integrity tests to verify that
    /// modelled transfers really moved the right bytes.
    pub fn checksum(&self, offset: usize, len: usize) -> Result<u64, OutOfBounds> {
        self.check(offset, len)?;
        let mut buf = vec![0u8; len];
        self.read(offset, &mut buf)?;
        Ok(fnv1a(&buf))
    }
}

impl fmt::Debug for SharedMem {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "SharedMem({} bytes)", self.len())
    }
}

/// FNV-1a over a byte slice. Re-exported from [`crate::hash`], where it
/// moved so protocol framing and tests share one implementation.
pub use crate::hash::fnv1a;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn write_then_read_roundtrips() {
        let m = SharedMem::new(64);
        m.write(8, &[1, 2, 3, 4]).unwrap();
        let mut out = [0u8; 4];
        m.read(8, &mut out).unwrap();
        assert_eq!(out, [1, 2, 3, 4]);
    }

    #[test]
    fn new_memory_is_zeroed() {
        let m = SharedMem::new(16);
        assert_eq!(m.snapshot(), vec![0u8; 16]);
    }

    #[test]
    fn bounds_are_enforced() {
        let m = SharedMem::new(10);
        assert!(m.write(8, &[0; 4]).is_err());
        let mut buf = [0u8; 4];
        assert!(m.read(9, &mut buf).is_err());
        assert!(m.fill(10, 1, 0xff).is_err());
        // Exactly at the end is fine.
        assert!(m.write(6, &[0; 4]).is_ok());
        // Zero-length at the end is fine.
        assert!(m.write(10, &[]).is_ok());
    }

    #[test]
    fn overflowing_offset_is_rejected() {
        let m = SharedMem::new(10);
        assert!(m.write(usize::MAX, &[1]).is_err());
        let err = m.write(usize::MAX - 2, &[0; 8]).unwrap_err();
        assert_eq!(err.capacity, 10);
    }

    #[test]
    fn fill_and_copy_within() {
        let m = SharedMem::new(32);
        m.fill(0, 8, 0xAB).unwrap();
        m.copy_within(0, 16, 8).unwrap();
        let mut out = [0u8; 8];
        m.read(16, &mut out).unwrap();
        assert_eq!(out, [0xAB; 8]);
    }

    #[test]
    fn overlapping_copy_within_is_correct() {
        let m = SharedMem::new(8);
        m.write(0, &[1, 2, 3, 4, 5, 6, 7, 8]).unwrap();
        m.copy_within(0, 2, 6).unwrap();
        assert_eq!(m.snapshot(), vec![1, 2, 1, 2, 3, 4, 5, 6]);
    }

    #[test]
    fn checksum_detects_changes() {
        let m = SharedMem::new(128);
        let before = m.checksum(0, 128).unwrap();
        m.write(64, &[9]).unwrap();
        let after = m.checksum(0, 128).unwrap();
        assert_ne!(before, after);
        assert_eq!(
            m.checksum(0, 64).unwrap(),
            SharedMem::new(64).checksum(0, 64).unwrap()
        );
    }

    #[test]
    fn concurrent_disjoint_writes() {
        use std::sync::Arc;
        let m = Arc::new(SharedMem::new(4096));
        let mut handles = Vec::new();
        for t in 0..4u8 {
            let m = Arc::clone(&m);
            handles.push(std::thread::spawn(move || {
                let chunk = vec![t + 1; 1024];
                m.write(t as usize * 1024, &chunk).unwrap();
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        let snap = m.snapshot();
        for t in 0..4usize {
            assert!(snap[t * 1024..(t + 1) * 1024]
                .iter()
                .all(|&b| b == t as u8 + 1));
        }
    }

    #[test]
    fn fnv1a_known_values() {
        assert_eq!(fnv1a(b""), 0xcbf29ce484222325);
        assert_ne!(fnv1a(b"a"), fnv1a(b"b"));
    }
}
