//! Cluster topology: nodes, ring segments, routes.
//!
//! The paper's testbed is a single SCI ringlet of 8 nodes: node *i*'s output
//! is cabled to node *i+1 mod N*'s input, so a request from A to B traverses
//! the segments A, A+1, …, B−1. SCI responses (echoes) continue around the
//! ring back to the sender, which is why the paper counts a maximum segment
//! utilisation of 8 on an 8-node ring.
//!
//! For the outlook in §5.3 (512-node systems from 8-node ringlets in a 3-D
//! torus) the topology also supports multiple rings joined by switch nodes;
//! routing between rings adds a fixed switch latency per crossing.

use core::fmt;

/// Identifies one node of the simulated cluster.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct NodeId(pub usize);

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

/// Identifies one unidirectional ring segment (the cable from `from` to the
/// next node on its ring). Links are numbered globally across rings.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct LinkId(pub usize);

/// A route: the ordered list of ring segments a request traverses, plus the
/// number of inter-ring switch crossings.
#[derive(Clone, PartialEq, Eq, Debug, Default)]
pub struct Route {
    /// Segments traversed by the request path, in order.
    pub links: Vec<LinkId>,
    /// Segments traversed by the SCI echo/response on its way back to the
    /// sender (continuing around each ring).
    pub echo_links: Vec<LinkId>,
    /// Inter-ring switch crossings (0 on a single ringlet).
    pub switch_crossings: usize,
    /// True for a failover route computed by [`Topology::alternate_route`]:
    /// traffic pays a degraded-path latency penalty while riding it.
    pub degraded: bool,
}

impl Route {
    /// An empty route (intra-node access).
    pub fn local() -> Route {
        Route::default()
    }

    /// True if this route stays inside one node (no fabric traversal).
    pub fn is_local(&self) -> bool {
        self.links.is_empty() && self.switch_crossings == 0
    }

    /// Number of request-path hops.
    pub fn hops(&self) -> usize {
        self.links.len() + self.switch_crossings
    }
}

/// Cluster interconnect topology.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Topology {
    /// A single SCI ringlet of `nodes` nodes.
    Ringlet { nodes: usize },
    /// `rings` ringlets of `nodes_per_ring` nodes each, joined through a
    /// switch fabric (abstracting the paper's 3-D torus outlook). Node ids
    /// are assigned ring-major: node `r * nodes_per_ring + i` is position
    /// `i` on ring `r`.
    MultiRing {
        /// Number of ringlets.
        rings: usize,
        /// Nodes per ringlet.
        nodes_per_ring: usize,
    },
}

impl Topology {
    /// A single ringlet of `nodes` nodes (panics on zero).
    pub fn ringlet(nodes: usize) -> Topology {
        assert!(nodes > 0, "a ringlet needs at least one node");
        Topology::Ringlet { nodes }
    }

    /// A multi-ring torus-like fabric (panics on zero dimensions).
    pub fn multi_ring(rings: usize, nodes_per_ring: usize) -> Topology {
        assert!(rings > 0 && nodes_per_ring > 0, "degenerate multi-ring");
        Topology::MultiRing {
            rings,
            nodes_per_ring,
        }
    }

    /// Total node count.
    pub fn node_count(&self) -> usize {
        match *self {
            Topology::Ringlet { nodes } => nodes,
            Topology::MultiRing {
                rings,
                nodes_per_ring,
            } => rings * nodes_per_ring,
        }
    }

    /// Total number of unidirectional ring segments.
    pub fn link_count(&self) -> usize {
        match *self {
            // A 1-node "ring" has no usable segment but we keep one slot so
            // LinkId arithmetic stays total.
            Topology::Ringlet { nodes } => nodes.max(1),
            Topology::MultiRing {
                rings,
                nodes_per_ring,
            } => rings * nodes_per_ring.max(1),
        }
    }

    /// The ring a node belongs to and its position on that ring.
    fn locate(&self, n: NodeId) -> (usize, usize, usize) {
        match *self {
            Topology::Ringlet { nodes } => {
                assert!(n.0 < nodes, "node {n} outside topology");
                (0, n.0, nodes)
            }
            Topology::MultiRing {
                rings,
                nodes_per_ring,
            } => {
                assert!(n.0 < rings * nodes_per_ring, "node {n} outside topology");
                (n.0 / nodes_per_ring, n.0 % nodes_per_ring, nodes_per_ring)
            }
        }
    }

    /// Segments from position `pos` walking `count` hops forward on `ring`.
    fn walk(&self, ring: usize, pos: usize, count: usize, ring_len: usize) -> Vec<LinkId> {
        (0..count)
            .map(|k| LinkId(ring * ring_len + (pos + k) % ring_len))
            .collect()
    }

    /// Compute the route for a request from `src` to `dst`.
    ///
    /// On a single ring the request travels forward from `src` to `dst` and
    /// the echo continues forward from `dst` back to `src`, so together they
    /// traverse every segment of the ring exactly once — matching the
    /// paper's utilisation accounting. Intra-node routes are empty.
    pub fn route(&self, src: NodeId, dst: NodeId) -> Route {
        if src == dst {
            return Route::local();
        }
        let (ring_s, pos_s, len_s) = self.locate(src);
        let (ring_d, pos_d, len_d) = self.locate(dst);
        if ring_s == ring_d {
            let fwd = (pos_d + len_s - pos_s) % len_s;
            let links = self.walk(ring_s, pos_s, fwd, len_s);
            let echo_links = self.walk(ring_s, pos_d, len_s - fwd, len_s);
            Route {
                links,
                echo_links,
                switch_crossings: 0,
                degraded: false,
            }
        } else {
            // Cross-ring: ride the source ring to its switch port (position
            // 0), cross the switch, ride the target ring from its port.
            let to_port = (len_s - pos_s) % len_s;
            let mut links = self.walk(ring_s, pos_s, to_port, len_s);
            links.extend(self.walk(ring_d, 0, pos_d, len_d));
            let echo_links = self.walk(ring_d, pos_d, len_d - pos_d, len_d);
            Route {
                links,
                echo_links,
                switch_crossings: 1,
                degraded: false,
            }
        }
    }

    /// Compute a failover route from `src` to `dst` that avoids the
    /// request links of the primary [`Topology::route`], or `None` when
    /// the topology offers no alternative.
    ///
    /// A single ringlet is unidirectional — there is exactly one way
    /// around, so no alternate exists. On a multi-ring fabric the switch
    /// ports give a second path: within a ring the alternate rides the
    /// complement arc *backwards* (modelling a maintenance bypass through
    /// the switch ports), and across rings it rides both ring arcs the
    /// other way. Alternate routes are marked [`Route::degraded`]; the
    /// fabric charges `degraded_route_latency` per access on them.
    pub fn alternate_route(&self, src: NodeId, dst: NodeId) -> Option<Route> {
        if src == dst {
            return None;
        }
        match *self {
            Topology::Ringlet { .. } => None,
            Topology::MultiRing { .. } => {
                let (ring_s, pos_s, len_s) = self.locate(src);
                let (ring_d, pos_d, len_d) = self.locate(dst);
                if ring_s == ring_d {
                    let fwd = (pos_d + len_s - pos_s) % len_s;
                    // The complement arc dst→src reversed: the same
                    // segments, traversed in the bypass direction, none
                    // shared with the primary request path.
                    let mut links = self.walk(ring_s, pos_d, len_s - fwd, len_s);
                    links.reverse();
                    let mut echo_links = self.walk(ring_s, pos_s, fwd, len_s);
                    echo_links.reverse();
                    Some(Route {
                        links,
                        echo_links,
                        switch_crossings: 0,
                        degraded: true,
                    })
                } else {
                    // Ride the source ring backwards to its switch port
                    // and the target ring backwards from the port — the
                    // arcs the primary route does not touch.
                    let mut links = self.walk(ring_s, 0, pos_s, len_s);
                    links.reverse();
                    let mut tail = self.walk(ring_d, pos_d, (len_d - pos_d) % len_d, len_d);
                    tail.reverse();
                    links.extend(tail);
                    let echo_links = self.walk(ring_d, 0, pos_d, len_d);
                    Some(Route {
                        links,
                        echo_links,
                        switch_crossings: 1,
                        degraded: true,
                    })
                }
            }
        }
    }

    /// Ring distance (request hops) from `src` to `dst`.
    pub fn distance(&self, src: NodeId, dst: NodeId) -> usize {
        self.route(src, dst).hops()
    }

    /// Iterate over all node ids.
    pub fn nodes(&self) -> impl Iterator<Item = NodeId> {
        (0..self.node_count()).map(NodeId)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ringlet_neighbour_route() {
        let t = Topology::ringlet(8);
        let r = t.route(NodeId(2), NodeId(3));
        assert_eq!(r.links, vec![LinkId(2)]);
        // Echo continues 3→…→2: seven segments.
        assert_eq!(r.echo_links.len(), 7);
        assert_eq!(r.hops(), 1);
    }

    #[test]
    fn ringlet_wraps_around() {
        let t = Topology::ringlet(8);
        let r = t.route(NodeId(6), NodeId(1));
        assert_eq!(r.links, vec![LinkId(6), LinkId(7), LinkId(0)]);
        assert_eq!(r.hops(), 3);
    }

    #[test]
    fn request_plus_echo_cover_whole_ring_once() {
        let t = Topology::ringlet(8);
        for d in 1..8 {
            let r = t.route(NodeId(0), NodeId(d));
            let mut all: Vec<usize> = r
                .links
                .iter()
                .chain(r.echo_links.iter())
                .map(|l| l.0)
                .collect();
            all.sort_unstable();
            assert_eq!(all, (0..8).collect::<Vec<_>>(), "distance {d}");
        }
    }

    #[test]
    fn local_route_is_empty() {
        let t = Topology::ringlet(4);
        let r = t.route(NodeId(1), NodeId(1));
        assert!(r.is_local());
        assert_eq!(r.hops(), 0);
        assert!(r.echo_links.is_empty());
    }

    #[test]
    fn distances_on_ring() {
        let t = Topology::ringlet(8);
        assert_eq!(t.distance(NodeId(0), NodeId(7)), 7);
        assert_eq!(t.distance(NodeId(7), NodeId(0)), 1);
        assert_eq!(t.distance(NodeId(3), NodeId(3)), 0);
    }

    #[test]
    fn multi_ring_crossing() {
        let t = Topology::multi_ring(2, 4);
        assert_eq!(t.node_count(), 8);
        assert_eq!(t.link_count(), 8);
        let r = t.route(NodeId(1), NodeId(6)); // ring 0 pos 1 → ring 1 pos 2
        assert_eq!(r.switch_crossings, 1);
        // 3 hops to port on ring 0 (links 1,2,3), 2 hops on ring 1 (links 4,5)
        assert_eq!(
            r.links,
            vec![LinkId(1), LinkId(2), LinkId(3), LinkId(4), LinkId(5)]
        );
        assert!(!r.is_local());
    }

    #[test]
    fn multi_ring_same_ring_stays_local_to_ring() {
        let t = Topology::multi_ring(2, 4);
        let r = t.route(NodeId(5), NodeId(7)); // both ring 1
        assert_eq!(r.switch_crossings, 0);
        assert_eq!(r.links, vec![LinkId(5), LinkId(6)]);
    }

    #[test]
    #[should_panic(expected = "outside topology")]
    fn out_of_range_node_panics() {
        let t = Topology::ringlet(4);
        let _ = t.route(NodeId(0), NodeId(4));
    }

    #[test]
    fn nodes_iterator_counts() {
        let t = Topology::multi_ring(3, 5);
        assert_eq!(t.nodes().count(), 15);
        assert_eq!(t.nodes().next(), Some(NodeId(0)));
    }

    #[test]
    fn ringlet_has_no_alternate_route() {
        let t = Topology::ringlet(8);
        assert!(t.alternate_route(NodeId(0), NodeId(3)).is_none());
        assert!(t.alternate_route(NodeId(3), NodeId(3)).is_none());
    }

    #[test]
    fn multi_ring_alternate_avoids_primary_links() {
        let t = Topology::multi_ring(2, 4);
        for s in 0..8 {
            for d in 0..8 {
                if s == d {
                    continue;
                }
                let primary = t.route(NodeId(s), NodeId(d));
                let alt = t.alternate_route(NodeId(s), NodeId(d)).unwrap();
                assert!(alt.degraded);
                for l in &alt.links {
                    assert!(
                        !primary.links.contains(l),
                        "{s}->{d}: alternate reuses primary link {l:?}"
                    );
                }
            }
        }
    }

    #[test]
    fn multi_ring_alternate_same_ring_rides_other_arc() {
        let t = Topology::multi_ring(2, 4);
        // Primary 0→2 uses links 0,1; alternate must use 2,3.
        let alt = t.alternate_route(NodeId(0), NodeId(2)).unwrap();
        let mut links: Vec<usize> = alt.links.iter().map(|l| l.0).collect();
        links.sort_unstable();
        assert_eq!(links, vec![2, 3]);
        assert_eq!(alt.switch_crossings, 0);
    }

    #[test]
    fn single_node_ring() {
        let t = Topology::ringlet(1);
        assert_eq!(t.link_count(), 1);
        assert!(t.route(NodeId(0), NodeId(0)).is_local());
    }
}
