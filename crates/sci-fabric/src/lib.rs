//! # sci-fabric — a simulated Scalable Coherent Interface
//!
//! This crate is the substrate of the SCI-MPICH reproduction: a
//! deterministic software model of an SCI-connected cluster as used by the
//! paper *"Exploiting Transparent Remote Memory Access for Non-Contiguous-
//! and One-Sided-Communication"* (IPPS 2002).
//!
//! **Real data, virtual time.** Exported segments are real byte buffers and
//! every PIO/DMA operation really moves bytes, so correctness is testable
//! end-to-end (checksums). Cost, however, is charged to [`simclock::Clock`]
//! logical clocks by a calibrated model of the Dolphin D330 adapter:
//! stream buffers, CPU write combining, posted writes with store barriers,
//! stalling remote reads, DMA setup/streaming, ring-segment contention, and
//! fault-induced retries. See [`params::SciParams`] for every knob.
//!
//! ```
//! use sci_fabric::{Fabric, FabricSpec, Topology, NodeId};
//! use simclock::Clock;
//!
//! let fabric = Fabric::new(FabricSpec {
//!     topology: Topology::ringlet(8),
//!     ..FabricSpec::default()
//! });
//! // Node 1 exports a segment; node 0 imports and writes to it.
//! let seg = fabric.export(NodeId(1), 4096);
//! let mut stream = fabric.pio_stream(NodeId(0), &seg, 4096);
//! let mut clock = Clock::new();
//! stream.write(&mut clock, 0, b"halo exchange").unwrap();
//! stream.barrier(&mut clock); // store barrier: data guaranteed delivered
//! let mut buf = [0u8; 13];
//! seg.mem().read(0, &mut buf).unwrap();
//! assert_eq!(&buf, b"halo exchange");
//! ```

pub mod dma;
pub mod fault;
pub mod hash;
pub mod link;
pub mod mem;
pub mod params;
pub mod pio;
pub mod segment;
pub mod topology;

pub use dma::{DmaCompletion, DmaEngine, SgEntry};
pub use fault::{
    death_schedule, ConnectionMonitor, DeathEvent, FailedTransaction, FaultConfig, FaultInjector,
    SciError, SeqStatus, SilentFault,
};
pub use hash::{crc32, fnv1a};
pub use link::{LinkRegistry, StreamGuard, TrafficStats};
pub use mem::SharedMem;
pub use params::{CacheModel, SciParams};
pub use pio::{PioReader, PioStream};
pub use segment::{Mapping, SciAddr, Segment, SegmentId, SegmentRegistry};
pub use topology::{LinkId, NodeId, Route, Topology};

use std::sync::Arc;

/// Everything needed to build a [`Fabric`].
#[derive(Clone, Debug)]
pub struct FabricSpec {
    /// Cluster topology.
    pub topology: Topology,
    /// Calibration constants.
    pub params: SciParams,
    /// Fault injection configuration.
    pub faults: FaultConfig,
    /// Seed for the (deterministic) fault injector.
    pub seed: u64,
}

impl Default for FabricSpec {
    fn default() -> Self {
        FabricSpec {
            topology: Topology::ringlet(8),
            params: SciParams::default(),
            faults: FaultConfig::default(),
            seed: 0x5C1_FAB,
        }
    }
}

/// The simulated SCI fabric shared by all nodes of a cluster.
#[derive(Debug)]
pub struct Fabric {
    topology: Topology,
    params: SciParams,
    segments: SegmentRegistry,
    links: Arc<LinkRegistry>,
    faults: FaultInjector,
}

impl Fabric {
    /// Build a fabric from a spec.
    pub fn new(spec: FabricSpec) -> Arc<Fabric> {
        let links = Arc::new(LinkRegistry::new(&spec.topology));
        Arc::new(Fabric {
            links,
            faults: FaultInjector::new(spec.faults, spec.seed),
            segments: SegmentRegistry::new(),
            params: spec.params,
            topology: spec.topology,
        })
    }

    /// The cluster topology.
    pub fn topology(&self) -> &Topology {
        &self.topology
    }

    /// The calibration constants.
    pub fn params(&self) -> &SciParams {
        &self.params
    }

    /// The link contention registry.
    pub fn links(&self) -> &Arc<LinkRegistry> {
        &self.links
    }

    /// The fault injector (tests use this to pull cables).
    pub fn faults(&self) -> &FaultInjector {
        &self.faults
    }

    /// The segment registry.
    pub fn segments(&self) -> &SegmentRegistry {
        &self.segments
    }

    /// Export `len` bytes of `owner`'s memory as an SCI segment.
    pub fn export(&self, owner: NodeId, len: usize) -> Arc<Segment> {
        self.segments.export(owner, len)
    }

    /// Import a segment at `importer`, computing the route to its owner.
    pub fn map(&self, importer: NodeId, segment: &Arc<Segment>) -> Mapping {
        Mapping {
            segment: Arc::clone(segment),
            importer,
            route: self.topology.route(importer, segment.owner()),
        }
    }

    /// Open a PIO store stream from `importer` into `segment`.
    /// `source_working_set` is the size of the data set the stores read
    /// from (chooses the local-memory bandwidth tier).
    pub fn pio_stream(
        self: &Arc<Self>,
        importer: NodeId,
        segment: &Arc<Segment>,
        source_working_set: usize,
    ) -> PioStream {
        PioStream::new(
            Arc::clone(self),
            self.map(importer, segment),
            source_working_set,
        )
    }

    /// Open a PIO load handle from `importer` into `segment`.
    pub fn pio_reader(self: &Arc<Self>, importer: NodeId, segment: &Arc<Segment>) -> PioReader {
        PioReader::new(Arc::clone(self), self.map(importer, segment))
    }

    /// Open a DMA handle from `importer` into `segment`.
    pub fn dma_engine(self: &Arc<Self>, importer: NodeId, segment: &Arc<Segment>) -> DmaEngine {
        DmaEngine::new(Arc::clone(self), self.map(importer, segment))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simclock::Clock;

    #[test]
    fn doc_example_works() {
        let fabric = Fabric::new(FabricSpec::default());
        let seg = fabric.export(NodeId(1), 4096);
        let mut stream = fabric.pio_stream(NodeId(0), &seg, 4096);
        let mut clock = Clock::new();
        stream.write(&mut clock, 0, b"halo exchange").unwrap();
        stream.barrier(&mut clock);
        let mut buf = [0u8; 13];
        seg.mem().read(0, &mut buf).unwrap();
        assert_eq!(&buf, b"halo exchange");
    }

    #[test]
    fn map_computes_route() {
        let fabric = Fabric::new(FabricSpec::default());
        let seg = fabric.export(NodeId(3), 64);
        let m = fabric.map(NodeId(0), &seg);
        assert_eq!(m.route.hops(), 3);
        let local = fabric.map(NodeId(3), &seg);
        assert!(local.is_local());
    }

    #[test]
    fn spec_default_is_paper_testbed() {
        let spec = FabricSpec::default();
        assert_eq!(spec.topology.node_count(), 8);
        assert_eq!(spec.params, SciParams::dolphin_d330());
    }
}
