//! Shared hash/checksum routines.
//!
//! Two independent functions serve two independent jobs:
//!
//! * [`fnv1a`] is the *oracle* checksum: tests and `SharedMem::checksum`
//!   use it to ask "did the modelled transfer really move these bytes?".
//! * [`crc32`] is the *protocol* checksum: the verified-delivery framing
//!   (eager payloads, rendezvous chunks, one-sided emulation packets)
//!   carries it on the wire, exactly as SCI-MPICH must verify transfers
//!   on hardware that can silently drop or corrupt a posted store.
//!
//! Keeping them distinct means a bug in the protocol CRC cannot hide from
//! the FNV-based test oracle.

/// FNV-1a over a byte slice (64-bit).
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x1000_0000_01b3);
    }
    h
}

/// CRC-32 (ISO-HDLC / zlib polynomial, reflected), table-driven.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut crc = !0u32;
    for &b in bytes {
        crc = (crc >> 8) ^ CRC32_TABLE[((crc ^ b as u32) & 0xFF) as usize];
    }
    !crc
}

/// Byte-at-a-time lookup table for the reflected polynomial 0xEDB88320.
const CRC32_TABLE: [u32; 256] = build_crc32_table();

const fn build_crc32_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 {
                (crc >> 1) ^ 0xEDB8_8320
            } else {
                crc >> 1
            };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fnv1a_known_values() {
        // FNV offset basis for the empty input.
        assert_eq!(fnv1a(b""), 0xcbf29ce484222325);
        assert_ne!(fnv1a(b"a"), fnv1a(b"b"));
        // Order sensitivity.
        assert_ne!(fnv1a(b"ab"), fnv1a(b"ba"));
    }

    #[test]
    fn crc32_known_vectors() {
        // The canonical CRC-32 check value.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
        assert_eq!(
            crc32(b"The quick brown fox jumps over the lazy dog"),
            0x414F_A339
        );
    }

    #[test]
    fn crc32_detects_single_bit_flips() {
        let mut data = vec![0xA5u8; 4096];
        let clean = crc32(&data);
        for pos in [0usize, 1, 63, 64, 4095] {
            for bit in 0..8 {
                data[pos] ^= 1 << bit;
                assert_ne!(crc32(&data), clean, "flip at {pos}:{bit} undetected");
                data[pos] ^= 1 << bit;
            }
        }
        assert_eq!(crc32(&data), clean);
    }

    #[test]
    fn crc_and_fnv_are_independent() {
        // Different algorithms: a payload's CRC is not derivable from its
        // FNV value (spot check that they diverge).
        assert_ne!(crc32(b"payload") as u64, fnv1a(b"payload") & 0xFFFF_FFFF);
    }
}
