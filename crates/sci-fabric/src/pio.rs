//! PIO remote memory access: transparent CPU stores and loads.
//!
//! This is the mechanism the whole paper is built on. Stores to imported
//! remote memory are *posted*: the CPU issues them and moves on
//! ("write-and-forget"), the adapter's **stream buffers** gather consecutive
//! ascending stores into large SCI transactions. Only a **store barrier**
//! guarantees the data has arrived — until then transactions may still be
//! in flight and, after a retry, may even arrive out of order.
//!
//! Loads from remote memory **stall the CPU** until data returns, which
//! makes read bandwidth a small fraction of write bandwidth (Figure 1) and
//! motivates the *remote-put* conversion for large `MPI_Get`s (§4.2).
//!
//! Cost model per store burst (a maximal run of consecutive ascending
//! bytes):
//!
//! ```text
//! cost = txn_overhead · align_factor + len / min(stream_bw, link_share)
//! ```
//!
//! where `align_factor` is 1 for bursts starting on a write-combine
//! boundary (32 B on the P-III) and `wc_misalign_factor` otherwise — this
//! reproduces the strong stride sensitivity measured in §4.3. Consecutive
//! writes (where the next store continues the previous burst) pay no new
//! overhead, which is exactly why `direct_pack_ff` insists on packing into
//! *consecutive ascending* remote addresses.

use crate::fault::{write_with_faults, SciError, SeqStatus, TxnOutcome};
use crate::link::StreamGuard;
use crate::segment::Mapping;
use crate::Fabric;
use simclock::{Clock, SimDuration, SimTime};
use std::sync::Arc;

/// A stream of remote stores through one mapping, modelling the adapter's
/// stream buffers. Create one per logical transfer; drop (or
/// [`PioStream::barrier`]) to flush.
#[derive(Debug)]
pub struct PioStream {
    fabric: Arc<Fabric>,
    mapping: Mapping,
    /// Size of the data set the CPU is reading from (selects the memory-
    /// bandwidth tier that feeds the stores — Figure 1's dip past L2).
    source_working_set: usize,
    /// Expected offset of the next store if it continues the current burst.
    next_offset: Option<usize>,
    /// Latest arrival time of any issued transaction.
    outstanding: SimTime,
    /// Total bytes issued through this stream.
    bytes: u64,
    /// Optional demand cap below the raw adapter rate (MPI-level sustained
    /// transfers are limited by PCI arbitration and protocol-engine
    /// overhead — the paper's 120 MiB/s per-node plateau).
    demand_cap: Option<simclock::Bandwidth>,
    /// Silent faults applied since the last [`Self::take_silent_faults`]
    /// (simulation bookkeeping — *not* observable by the modelled program).
    silent_faults: u64,
    /// True if a silent fault hit the current sequence-check interval.
    seq_tainted: bool,
    /// Write-combining batch staged by [`Self::write_batched`]: start
    /// offset and the contiguous bytes accumulated so far, waiting either
    /// for a batch-aligned boundary or an explicit [`Self::flush_wc`].
    wc_pending: Option<(usize, Vec<u8>)>,
    /// Link-contention registration for the stream's lifetime.
    _guard: Option<StreamGuard>,
}

impl PioStream {
    pub(crate) fn new(fabric: Arc<Fabric>, mapping: Mapping, source_working_set: usize) -> Self {
        let guard = if mapping.is_local() {
            None
        } else {
            Some(fabric.links().start_stream(&mapping.route))
        };
        PioStream {
            fabric,
            mapping,
            source_working_set,
            next_offset: None,
            outstanding: SimTime::ZERO,
            bytes: 0,
            demand_cap: None,
            silent_faults: 0,
            seq_tainted: false,
            wc_pending: None,
            _guard: guard,
        }
    }

    /// Cap this stream's demand below the raw adapter rate. Used for
    /// sustained MPI-level transfers (one-sided windows): PCI arbitration
    /// and the protocol engine bound long-running store streams at the
    /// node injection cap even though short raw bursts reach the adapter
    /// peak (Figure 1 vs Figure 12).
    pub fn cap_demand(&mut self, cap: simclock::Bandwidth) {
        self.demand_cap = Some(cap);
    }

    /// Total bytes issued so far.
    pub fn bytes_written(&self) -> u64 {
        self.bytes
    }

    /// True if the mapping is intra-node (plain memory, no fabric cost).
    pub fn is_local(&self) -> bool {
        self.mapping.is_local()
    }

    /// True while the stream rides a degraded failover route.
    pub fn is_degraded(&self) -> bool {
        self.mapping.route.degraded
    }

    /// Swap the stream onto `route`: re-register link contention and
    /// reset burst state (the adapter's stream buffers cannot continue a
    /// burst across a route change).
    fn switch_route(&mut self, route: crate::topology::Route) {
        self.mapping.route = route;
        self._guard = Some(self.fabric.links().start_stream(&self.mapping.route));
        self.next_offset = None;
    }

    /// After a hard transaction failure, try to switch to the other route
    /// between importer and owner (the degraded bypass, or back to the
    /// primary when already degraded). Returns `true` if a healthy
    /// candidate was found and adopted.
    fn try_failover(&mut self) -> bool {
        if self.mapping.is_local() {
            return false;
        }
        let topo = self.fabric.topology();
        let src = self.mapping.importer;
        let dst = self.mapping.segment.owner();
        let candidate = if self.mapping.route.degraded {
            Some(topo.route(src, dst))
        } else {
            topo.alternate_route(src, dst)
        };
        let Some(candidate) = candidate else {
            return false;
        };
        if self.fabric.faults().check_route(&candidate).is_err() {
            return false;
        }
        self.switch_route(candidate);
        obs::inc(obs::Counter::RouteFailovers);
        true
    }

    /// Pass a burst through the injector on the current route; on a hard
    /// failure charge the wasted retry time, attempt a route failover and
    /// retry the burst once on the new route.
    fn transact_with_failover(
        &mut self,
        clock: &mut Clock,
        txns: u64,
    ) -> Result<TxnOutcome, SciError> {
        match self
            .fabric
            .faults()
            .transact_bulk(&self.mapping.route, txns)
        {
            Ok(o) => Ok(o),
            Err(f) => {
                clock.advance(f.wasted);
                if !self.try_failover() {
                    return Err(f.error);
                }
                match self
                    .fabric
                    .faults()
                    .transact_bulk(&self.mapping.route, txns)
                {
                    Ok(o) => Ok(o),
                    Err(f2) => {
                        clock.advance(f2.wasted);
                        Err(f2.error)
                    }
                }
            }
        }
    }

    /// While degraded, switch back to the primary route as soon as it is
    /// healthy again.
    fn maybe_heal(&mut self) {
        if !self.mapping.route.degraded {
            return;
        }
        let primary = self
            .fabric
            .topology()
            .route(self.mapping.importer, self.mapping.segment.owner());
        if self.fabric.faults().check_route(&primary).is_ok() {
            self.switch_route(primary);
            obs::inc(obs::Counter::RouteHeals);
        }
    }

    /// Land `data` in the target segment, applying any silent faults the
    /// injector rolls for this burst (`txn_bytes` is the transaction
    /// granularity of the burst — 8 for write-combine-thrashed stores,
    /// the stream-buffer size otherwise).
    fn land(&mut self, offset: usize, data: &[u8], txn_bytes: usize) -> Result<(), SciError> {
        let pair = (self.mapping.importer.0, self.mapping.segment.owner().0);
        let faults = self
            .fabric
            .faults()
            .silent_faults(pair, txn_bytes, data.len(), true);
        if !faults.is_empty() {
            self.silent_faults += faults.len() as u64;
            self.seq_tainted = true;
        }
        write_with_faults(self.mapping.segment.mem(), offset, data, 0, &faults)?;
        self.bytes += data.len() as u64;
        Ok(())
    }

    /// SISCI-style `SCIStartSequence`: open a checked transfer interval.
    /// Costs one adapter CSR round trip ([`sequence_check_cost`]) and
    /// clears the taint state of the previous interval.
    ///
    /// [`sequence_check_cost`]: crate::params::SciParams::sequence_check_cost
    pub fn start_sequence(&mut self, clock: &mut Clock) {
        clock.advance(self.fabric.params().sequence_check_cost);
        self.seq_tainted = false;
    }

    /// SISCI-style `SCICheckSequence`: close the interval opened by
    /// [`Self::start_sequence`] and report whether any transaction in it
    /// was silently corrupted or dropped. Costs one adapter CSR round
    /// trip. Detection only — repairing a tainted interval (retransmit)
    /// is the caller's job, exactly as in SISCI.
    pub fn check_sequence(&mut self, clock: &mut Clock) -> SeqStatus {
        clock.advance(self.fabric.params().sequence_check_cost);
        let status = if self.seq_tainted {
            SeqStatus::Tainted
        } else {
            SeqStatus::Ok
        };
        self.seq_tainted = false;
        status
    }

    /// Silent faults applied through this stream since the last call.
    /// Simulation bookkeeping (free, invisible to the modelled program):
    /// the protocol layer uses it to count corruption that sailed through
    /// unchecked when integrity checking is off.
    pub fn take_silent_faults(&mut self) -> u64 {
        std::mem::take(&mut self.silent_faults)
    }

    /// Issue stores of `data` to `offset`. Advances `clock` by the CPU
    /// issue cost; the data is in flight until a [`Self::barrier`].
    ///
    /// Consecutive ascending writes (where `offset` equals the end of the
    /// previous write) merge into the ongoing burst and pay no new
    /// transaction overhead.
    pub fn write(&mut self, clock: &mut Clock, offset: usize, data: &[u8]) -> Result<(), SciError> {
        if data.is_empty() {
            return Ok(());
        }
        let fabric = Arc::clone(&self.fabric);
        let params = fabric.params();

        if self.mapping.is_local() {
            // Intra-node: a plain memcpy through the cache hierarchy —
            // never subject to fabric faults.
            self.mapping.segment.mem().write(offset, data)?;
            self.bytes += data.len() as u64;
            let cost = params
                .cache
                .copy_cost(data.len(), self.source_working_set.max(data.len()));
            clock.advance(cost);
            self.outstanding = self.outstanding.max(clock.now());
            return Ok(());
        }

        // Fabric path. Validate the target range up front so out-of-bounds
        // accesses surface before any time is charged or fault dice roll.
        self.mapping.segment.mem().check_range(offset, data.len())?;
        // A degraded stream returns to its primary route the moment that
        // route is healthy again.
        self.maybe_heal();
        let continues = self.next_offset == Some(offset);
        let misaligned_thrash = !continues
            && !offset.is_multiple_of(params.write_combine_bytes)
            && params.wc_misalign_factor > 1.0;
        if misaligned_thrash {
            // The write-combine buffers never fill in phase: every 8-byte
            // store flushes partially and becomes its own (padded) SCI
            // transaction. This is the §4.3 misaligned-stride cliff.
            let stores = data.len().div_ceil(8) as u64;
            let mut cost =
                params.txn_overhead + params.uncombined_store_cost.saturating_mul(stores);
            if self.mapping.route.degraded {
                cost += params.degraded_route_latency;
            }
            let outcome = self.transact_with_failover(clock, stores)?;
            self.land(offset, data, 8)?;
            clock.advance(cost + outcome.extra_latency);
            let arrival =
                clock.now() + params.wire_latency(self.mapping.route.hops()) + outcome.jitter;
            self.outstanding = self.outstanding.max(arrival);
            self.next_offset = Some(offset + data.len());
            self.fabric
                .links()
                .account(params, &self.mapping.route, data.len() as u64);
            return Ok(());
        }
        let mut cost = SimDuration::ZERO;
        if self.mapping.route.degraded {
            cost += params.degraded_route_latency;
        }
        if !continues {
            cost += params.txn_overhead;
        } else {
            // Burst-continuing store from a scattered source: the copy
            // loop restarts, and small blocks cannot keep the stream
            // buffer's gather window open (§3.4's 8-byte-granularity
            // penalty).
            cost += params.block_issue_overhead;
            if data.len() < params.min_txn_bytes {
                cost += params.sub_txn_flush;
            } else if data.len() < params.stream_buffer_bytes {
                let missing = (params.stream_buffer_bytes - data.len()) as u64;
                cost += params.partial_flush_per_byte.saturating_mul(missing);
            }
        }
        let mut demand = params.pio_stream_bw(self.source_working_set.max(data.len()));
        if let Some(cap) = self.demand_cap {
            demand = demand.min(cap);
        }
        let stream_bw =
            self.fabric
                .links()
                .effective_bandwidth(params, &self.mapping.route, demand);
        cost += stream_bw.cost(data.len() as u64);

        // Fault injection: retries add latency and delivery jitter, one
        // die roll per SCI transaction.
        let txns = data.len().div_ceil(params.stream_buffer_bytes) as u64;
        let outcome = self.transact_with_failover(clock, txns)?;
        self.land(offset, data, params.stream_buffer_bytes)?;
        cost += outcome.extra_latency;

        clock.advance(cost);
        let arrival = clock.now()
            + self.fabric.params().wire_latency(self.mapping.route.hops())
            + outcome.jitter;
        self.outstanding = self.outstanding.max(arrival);
        self.next_offset = Some(offset + data.len());

        self.fabric
            .links()
            .account(params, &self.mapping.route, data.len() as u64);
        Ok(())
    }

    /// Issue stores of `data` to `offset` through the **write-combining
    /// store batcher**: adjacent (or overlapping) stores are staged in a
    /// host-side combine window and flushed as whole
    /// [`wc_batch_bytes`]-aligned chunks, so many small scattered leaf
    /// stores collapse into few full SCI transactions instead of each
    /// paying its own issue/flush penalty. A staged store costs only
    /// [`wc_store_cost`]; the flushed chunks pay the regular [`Self::write`]
    /// burst model (and roll its fault dice), so byte placement, bounds
    /// errors and silent-fault behaviour per landed chunk are identical to
    /// unbatched writes.
    ///
    /// Callers **must** [`Self::flush_wc`] (directly or via the sink's
    /// `finish`) before a barrier or before reading the target back.
    ///
    /// [`wc_batch_bytes`]: crate::params::SciParams::wc_batch_bytes
    /// [`wc_store_cost`]: crate::params::SciParams::wc_store_cost
    pub fn write_batched(
        &mut self,
        clock: &mut Clock,
        offset: usize,
        data: &[u8],
    ) -> Result<(), SciError> {
        if data.is_empty() {
            return Ok(());
        }
        // Validate eagerly so out-of-bounds stores surface at the store,
        // not at some later flush — same contract as unbatched writes.
        self.mapping.segment.mem().check_range(offset, data.len())?;
        let params = self.fabric.params();
        let batch = params.wc_batch_bytes.max(1);
        let store_cost = params.wc_store_cost;
        if let Some((start, buf)) = self.wc_pending.as_mut() {
            let end = *start + buf.len();
            if offset >= *start && offset <= end {
                // Adjacent or overlapping: merge into the combine window.
                let rel = offset - *start;
                let new_end = rel + data.len();
                if buf.len() < new_end {
                    buf.resize(new_end, 0);
                }
                buf[rel..new_end].copy_from_slice(data);
                obs::inc(obs::Counter::WcCoalescedStores);
                clock.advance(store_cost);
                return self.drain_aligned(clock, batch);
            }
            // Discontiguous: the window closes and the new store starts a
            // fresh batch.
            self.flush_wc(clock)?;
        }
        if data.len() >= batch {
            // Large stores gain nothing from staging — issue directly.
            return self.write(clock, offset, data);
        }
        clock.advance(store_cost);
        self.wc_pending = Some((offset, data.to_vec()));
        self.drain_aligned(clock, batch)
    }

    /// Flush every complete `batch`-aligned chunk from the front of the
    /// combine window, keeping the unaligned tail staged.
    fn drain_aligned(&mut self, clock: &mut Clock, batch: usize) -> Result<(), SciError> {
        let Some((mut start, mut buf)) = self.wc_pending.take() else {
            return Ok(());
        };
        loop {
            let boundary = (start / batch + 1) * batch;
            let chunk = boundary - start;
            if buf.len() < chunk {
                break;
            }
            let rest = buf.split_off(chunk);
            self.write(clock, start, &buf)?;
            start = boundary;
            buf = rest;
        }
        if !buf.is_empty() {
            self.wc_pending = Some((start, buf));
        }
        Ok(())
    }

    /// Flush the write-combining window: issue whatever is staged as one
    /// final (possibly partial) chunk. No-op when nothing is pending.
    pub fn flush_wc(&mut self, clock: &mut Clock) -> Result<(), SciError> {
        if let Some((start, buf)) = self.wc_pending.take() {
            self.write(clock, start, &buf)?;
        }
        Ok(())
    }

    /// Bytes currently staged in the write-combining window (diagnostics).
    pub fn wc_pending_bytes(&self) -> usize {
        self.wc_pending.as_ref().map_or(0, |(_, b)| b.len())
    }

    /// Convenience: a strided series of equal-sized writes starting at
    /// `base`, `count` blocks of `block` bytes spaced `stride` bytes apart,
    /// sourced from `data` (contiguous). Used by the §4.3 strided-write
    /// study.
    pub fn write_strided(
        &mut self,
        clock: &mut Clock,
        base: usize,
        block: usize,
        stride: usize,
        count: usize,
        data: &[u8],
    ) -> Result<(), SciError> {
        assert!(data.len() >= block * count, "source too small");
        for i in 0..count {
            let src = &data[i * block..(i + 1) * block];
            self.write(clock, base + i * stride, src)?;
        }
        Ok(())
    }

    /// Store barrier: wait until every issued transaction has arrived.
    /// Advances the clock past the latest outstanding arrival plus the
    /// barrier cost, and resets burst state.
    pub fn barrier(&mut self, clock: &mut Clock) -> SimTime {
        // Defensive: batched callers flush (and handle errors) before the
        // barrier; a batch still staged here would otherwise lose bytes.
        // Errors were already surfaced at stage time by the eager bounds
        // check, so a best-effort flush is safe.
        if self.wc_pending.is_some() {
            let _ = self.flush_wc(clock);
        }
        clock.merge(self.outstanding);
        clock.advance(self.fabric.params().store_barrier);
        self.next_offset = None;
        clock.now()
    }

    /// The latest in-flight arrival time (for tests and the runtime's
    /// completion bookkeeping).
    pub fn outstanding(&self) -> SimTime {
        self.outstanding
    }
}

/// Remote loads through a mapping. Each read transaction stalls the CPU for
/// the full round trip.
#[derive(Debug)]
pub struct PioReader {
    fabric: Arc<Fabric>,
    mapping: Mapping,
}

impl PioReader {
    pub(crate) fn new(fabric: Arc<Fabric>, mapping: Mapping) -> Self {
        PioReader { fabric, mapping }
    }

    /// True if the mapping is intra-node.
    pub fn is_local(&self) -> bool {
        self.mapping.is_local()
    }

    /// Read `dst.len()` bytes from `offset`. The clock advances by the full
    /// stall time (reads are synchronous) — no barrier needed afterwards.
    pub fn read(&self, clock: &mut Clock, offset: usize, dst: &mut [u8]) -> Result<(), SciError> {
        self.read_counted(clock, offset, dst).map(|_| ())
    }

    /// Like [`Self::read`], but reports how many read transactions were
    /// silently corrupted (simulation bookkeeping for the integrity layer;
    /// the modelled program cannot see this without a checksum).
    pub fn read_counted(
        &self,
        clock: &mut Clock,
        offset: usize,
        dst: &mut [u8],
    ) -> Result<u64, SciError> {
        if dst.is_empty() {
            return Ok(0);
        }
        let params = self.fabric.params();
        self.mapping.segment.mem().read(offset, dst)?;

        if self.mapping.is_local() {
            clock.advance(params.cache.copy_cost(dst.len(), dst.len()));
            return Ok(0);
        }
        let txns = dst.len().div_ceil(params.read_txn_bytes) as u64;
        let mut cost = params.read_stall.saturating_mul(txns);
        // Reads stall synchronously: a hard failure still cost the CPU the
        // time of the failed attempts. No failover here — the one-sided
        // layer reacts to reader errors by falling back to emulation.
        let outcome = match self
            .fabric
            .faults()
            .transact_bulk(&self.mapping.route, txns)
        {
            Ok(o) => o,
            Err(f) => {
                clock.advance(f.wasted);
                return Err(f.error);
            }
        };
        cost += outcome.extra_latency;
        clock.advance(cost);
        // Silent read faults: the data flows owner → importer. Only bit
        // flips apply (a lost read transaction retries inside the adapter
        // and shows up as latency, never silently).
        let pair = (self.mapping.segment.owner().0, self.mapping.importer.0);
        let faults =
            self.fabric
                .faults()
                .silent_faults(pair, params.read_txn_bytes, dst.len(), false);
        for f in &faults {
            if let crate::fault::SilentFault::BitFlip { pos, mask } = *f {
                dst[pos] ^= mask;
            }
        }
        self.fabric
            .links()
            .account(params, &self.mapping.route, dst.len() as u64);
        Ok(faults.len() as u64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topology::{NodeId, Topology};
    use crate::{Fabric, FabricSpec};
    use simclock::Bandwidth;

    fn fabric() -> Arc<Fabric> {
        Fabric::new(FabricSpec {
            topology: Topology::ringlet(8),
            ..FabricSpec::default()
        })
    }

    #[test]
    fn write_moves_bytes_and_costs_time() {
        let f = fabric();
        let seg = f.export(NodeId(1), 4096);
        let mut s = f.pio_stream(NodeId(0), &seg, 4096);
        let mut clock = Clock::new();
        s.write(&mut clock, 0, &[7u8; 1024]).unwrap();
        assert!(clock.now() > SimTime::ZERO);
        let mut out = [0u8; 1024];
        seg.mem().read(0, &mut out).unwrap();
        assert!(out.iter().all(|&b| b == 7));
        assert_eq!(s.bytes_written(), 1024);
    }

    #[test]
    fn consecutive_writes_merge_into_one_burst() {
        let f = fabric();
        let seg = f.export(NodeId(1), 1 << 20);
        // Two streams, same total bytes: one as a contiguous run of
        // consecutive 64 B stores, the other strided (each write its own
        // burst).
        let mut contig = f.pio_stream(NodeId(0), &seg, 8192);
        let mut strided = f.pio_stream(NodeId(0), &seg, 8192);
        let mut c1 = Clock::new();
        let mut c2 = Clock::new();
        let chunk = [0u8; 64];
        for i in 0..128 {
            contig.write(&mut c1, i * 64, &chunk).unwrap();
        }
        for i in 0..128 {
            strided.write(&mut c2, i * 256, &chunk).unwrap();
        }
        // Strided pays the full new-burst transaction overhead per write;
        // consecutive writes pay only the (smaller) loop-restart cost.
        assert!(
            c2.now().as_ps() * 10 > c1.now().as_ps() * 14,
            "strided {:?} should be clearly slower than consecutive {:?}",
            c2.now(),
            c1.now()
        );
        // And one single big write beats both by avoiding per-block costs.
        let mut single = f.pio_stream(NodeId(0), &seg, 8192);
        let mut c3 = Clock::new();
        single.write(&mut c3, 0, &[0u8; 8192]).unwrap();
        assert!(c3.now().as_ps() * 2 < c1.now().as_ps() * 3);
    }

    #[test]
    fn batched_stores_place_bytes_identically_and_cost_less() {
        let f = fabric();
        let seg_a = f.export(NodeId(1), 1 << 16);
        let seg_b = f.export(NodeId(1), 1 << 16);
        // 256 adjacent 16-byte stores (the shape `pack_ff` emits for a
        // strided vector packed to ascending offsets).
        let data: Vec<u8> = (0..4096u32).map(|i| i as u8).collect();
        let mut plain = f.pio_stream(NodeId(0), &seg_a, 4096);
        let mut batched = f.pio_stream(NodeId(0), &seg_b, 4096);
        let mut c1 = Clock::new();
        let mut c2 = Clock::new();
        for i in 0..256 {
            plain
                .write(&mut c1, i * 16, &data[i * 16..(i + 1) * 16])
                .unwrap();
        }
        for i in 0..256 {
            batched
                .write_batched(&mut c2, i * 16, &data[i * 16..(i + 1) * 16])
                .unwrap();
        }
        batched.flush_wc(&mut c2).unwrap();
        assert_eq!(batched.wc_pending_bytes(), 0);
        // Identical placement...
        assert_eq!(
            &seg_a.mem().snapshot()[..4096],
            &seg_b.mem().snapshot()[..4096]
        );
        assert_eq!(batched.bytes_written(), 4096);
        // ...at a clearly lower issue cost: the per-store sub-transaction
        // flush penalties collapse into whole-transaction chunks.
        assert!(
            c2.now().as_ps() * 3 < c1.now().as_ps() * 2,
            "batched {:?} vs plain {:?}",
            c2.now(),
            c1.now()
        );
    }

    #[test]
    fn batched_discontiguous_stores_flush_and_land_correctly() {
        let f = fabric();
        let seg = f.export(NodeId(1), 1 << 16);
        let mut s = f.pio_stream(NodeId(0), &seg, 4096);
        let mut c = Clock::new();
        // Two adjacent stores, a gap, then two more — the gap must close
        // the first window without mixing bytes.
        s.write_batched(&mut c, 0, &[0x11; 24]).unwrap();
        s.write_batched(&mut c, 24, &[0x22; 24]).unwrap();
        s.write_batched(&mut c, 512, &[0x33; 8]).unwrap();
        s.write_batched(&mut c, 520, &[0x44; 8]).unwrap();
        // Overlapping rewrite inside the staged window.
        s.write_batched(&mut c, 524, &[0x55; 4]).unwrap();
        s.flush_wc(&mut c).unwrap();
        let snap = seg.mem().snapshot();
        assert!(snap[..24].iter().all(|&b| b == 0x11));
        assert!(snap[24..48].iter().all(|&b| b == 0x22));
        assert!(snap[512..520].iter().all(|&b| b == 0x33));
        assert!(snap[520..524].iter().all(|&b| b == 0x44));
        assert!(snap[524..528].iter().all(|&b| b == 0x55));
        assert!(snap[48..512].iter().all(|&b| b == 0));
    }

    #[test]
    fn batched_out_of_bounds_errors_at_the_store() {
        let f = fabric();
        let seg = f.export(NodeId(1), 64);
        let mut s = f.pio_stream(NodeId(0), &seg, 64);
        let mut c = Clock::new();
        s.write_batched(&mut c, 48, &[1u8; 16]).unwrap();
        assert!(matches!(
            s.write_batched(&mut c, 64, &[1u8; 16]),
            Err(SciError::OutOfBounds(_))
        ));
        // The in-bounds part still flushes cleanly.
        s.flush_wc(&mut c).unwrap();
        assert!(seg.mem().snapshot()[48..].iter().all(|&b| b == 1));
    }

    #[test]
    fn barrier_flushes_a_forgotten_batch() {
        let f = fabric();
        let seg = f.export(NodeId(1), 4096);
        let mut s = f.pio_stream(NodeId(0), &seg, 4096);
        let mut c = Clock::new();
        s.write_batched(&mut c, 0, &[9u8; 24]).unwrap();
        assert!(s.wc_pending_bytes() > 0);
        s.barrier(&mut c);
        assert_eq!(s.wc_pending_bytes(), 0);
        assert!(seg.mem().snapshot()[..24].iter().all(|&b| b == 9));
    }

    #[test]
    fn batched_large_stores_pass_straight_through() {
        let f = fabric();
        let seg = f.export(NodeId(1), 1 << 16);
        let mut s = f.pio_stream(NodeId(0), &seg, 4096);
        let mut c = Clock::new();
        s.write_batched(&mut c, 0, &[7u8; 4096]).unwrap();
        assert_eq!(s.wc_pending_bytes(), 0, "large store must not stage");
        assert!(seg.mem().snapshot()[..4096].iter().all(|&b| b == 7));
    }

    #[test]
    fn misaligned_bursts_pay_wc_penalty() {
        let f = fabric();
        let seg = f.export(NodeId(1), 1 << 20);
        let chunk = [0u8; 8];
        // Aligned strided writes (stride 32).
        let mut aligned = f.pio_stream(NodeId(0), &seg, 4096);
        let mut c1 = Clock::new();
        for i in 0..256 {
            aligned.write(&mut c1, i * 32, &chunk).unwrap();
        }
        // Misaligned strided writes (stride 40 — not a multiple of 32).
        let mut misaligned = f.pio_stream(NodeId(0), &seg, 4096);
        let mut c2 = Clock::new();
        for i in 0..256 {
            misaligned.write(&mut c2, i * 40, &chunk).unwrap();
        }
        let ratio = c2.now().as_ps() as f64 / c1.now().as_ps() as f64;
        assert!(ratio > 2.0, "misalignment penalty ratio was {ratio}");
    }

    #[test]
    fn barrier_waits_for_arrival() {
        let f = fabric();
        let seg = f.export(NodeId(4), 4096);
        let mut s = f.pio_stream(NodeId(0), &seg, 4096);
        let mut clock = Clock::new();
        s.write(&mut clock, 0, &[1u8; 64]).unwrap();
        let before = clock.now();
        let outstanding = s.outstanding();
        assert!(outstanding > before, "writes are posted, arrival is later");
        s.barrier(&mut clock);
        assert!(clock.now() >= outstanding);
    }

    #[test]
    fn local_mapping_costs_memcpy_not_fabric() {
        let f = fabric();
        let seg = f.export(NodeId(2), 1 << 20);
        let mut local = f.pio_stream(NodeId(2), &seg, 1 << 20);
        let mut remote = f.pio_stream(NodeId(0), &seg, 1 << 20);
        assert!(local.is_local());
        assert!(!remote.is_local());
        let data = vec![3u8; 256 * 1024];
        let mut cl = Clock::new();
        let mut cr = Clock::new();
        local.write(&mut cl, 0, &data).unwrap();
        remote.write(&mut cr, 0, &data).unwrap();
        // Local memcpy (~290 MiB/s) beats remote PIO (~160 at this size).
        assert!(cl.now() < cr.now());
    }

    #[test]
    fn reads_are_much_slower_than_writes() {
        let f = fabric();
        let seg = f.export(NodeId(1), 1 << 20);
        let len = 64 * 1024;
        let mut s = f.pio_stream(NodeId(0), &seg, len);
        let mut wc = Clock::new();
        s.write(&mut wc, 0, &vec![1u8; len]).unwrap();
        s.barrier(&mut wc);

        let r = f.pio_reader(NodeId(0), &seg);
        let mut rc = Clock::new();
        let mut buf = vec![0u8; len];
        r.read(&mut rc, 0, &mut buf).unwrap();
        assert!(buf.iter().all(|&b| b == 1));
        let ratio = rc.now().as_ps() as f64 / wc.now().as_ps() as f64;
        assert!(ratio > 5.0, "read/write cost ratio only {ratio}");
    }

    #[test]
    fn write_bandwidth_dips_for_large_working_sets() {
        let f = fabric();
        let seg = f.export(NodeId(1), 4 << 20);
        let small = 64 * 1024; // fits L2
        let large = 1 << 20; // exceeds L2
        let bw = |ws: usize| {
            let mut s = f.pio_stream(NodeId(0), &seg, ws);
            let mut c = Clock::new();
            s.write(&mut c, 0, &vec![0u8; ws]).unwrap();
            s.barrier(&mut c);
            Bandwidth::observed(ws as u64, c.now() - SimTime::ZERO).mib_per_sec()
        };
        assert!(bw(small) > bw(large), "no Figure-1 dip past L2");
    }

    #[test]
    fn strided_helper_equivalent_to_loop() {
        let f = fabric();
        let seg = f.export(NodeId(1), 1 << 16);
        let data: Vec<u8> = (0..1024u32).map(|i| i as u8).collect();
        let mut s = f.pio_stream(NodeId(0), &seg, 1024);
        let mut c = Clock::new();
        s.write_strided(&mut c, 0, 64, 128, 16, &data).unwrap();
        // Verify placement of block 3.
        let mut out = [0u8; 64];
        seg.mem().read(3 * 128, &mut out).unwrap();
        assert_eq!(&out[..], &data[3 * 64..4 * 64]);
    }

    #[test]
    fn out_of_bounds_write_is_error_not_panic() {
        let f = fabric();
        let seg = f.export(NodeId(1), 128);
        let mut s = f.pio_stream(NodeId(0), &seg, 128);
        let mut c = Clock::new();
        assert!(matches!(
            s.write(&mut c, 100, &[0u8; 64]),
            Err(SciError::OutOfBounds(_))
        ));
    }

    #[test]
    fn empty_write_and_read_are_free() {
        let f = fabric();
        let seg = f.export(NodeId(1), 128);
        let mut s = f.pio_stream(NodeId(0), &seg, 0);
        let r = f.pio_reader(NodeId(0), &seg);
        let mut c = Clock::new();
        s.write(&mut c, 0, &[]).unwrap();
        r.read(&mut c, 0, &mut []).unwrap();
        assert_eq!(c.now(), SimTime::ZERO);
    }

    fn silent_fabric(corrupt: f64, drop: f64) -> Arc<Fabric> {
        Fabric::new(FabricSpec {
            topology: Topology::ringlet(8),
            faults: crate::fault::FaultConfig::silent(corrupt, drop),
            ..FabricSpec::default()
        })
    }

    #[test]
    fn silent_corruption_lands_wrong_bytes() {
        let f = silent_fabric(1.0, 0.0);
        let seg = f.export(NodeId(1), 4096);
        let mut s = f.pio_stream(NodeId(0), &seg, 4096);
        let mut c = Clock::new();
        s.write(&mut c, 0, &[0u8; 1024]).unwrap();
        s.barrier(&mut c);
        let snap = &seg.mem().snapshot()[..1024];
        let flipped = snap.iter().filter(|&&b| b != 0).count();
        // Rate 1.0 ⇒ one flip in every 64 B transaction.
        assert_eq!(flipped, 16, "one flipped byte per transaction");
        assert_eq!(s.take_silent_faults(), 16);
        assert_eq!(s.take_silent_faults(), 0, "taken counters reset");
    }

    #[test]
    fn dropped_stores_leave_previous_content() {
        let f = silent_fabric(0.0, 1.0);
        let seg = f.export(NodeId(1), 4096);
        seg.mem().fill(0, 4096, 0xEE).unwrap();
        let mut s = f.pio_stream(NodeId(0), &seg, 4096);
        let mut c = Clock::new();
        s.write(&mut c, 0, &[0x11; 1024]).unwrap();
        s.barrier(&mut c);
        let snap = &seg.mem().snapshot()[..1024];
        assert!(
            snap.iter().all(|&b| b == 0xEE),
            "every store dropped ⇒ nothing lands"
        );
    }

    #[test]
    fn sequence_check_detects_taint_and_charges_cost() {
        let f = silent_fabric(1.0, 0.0);
        let seg = f.export(NodeId(1), 4096);
        let mut s = f.pio_stream(NodeId(0), &seg, 4096);
        let mut c = Clock::new();
        s.start_sequence(&mut c);
        let t0 = c.now();
        s.write(&mut c, 0, &[0u8; 256]).unwrap();
        s.barrier(&mut c);
        let before_check = c.now();
        assert_eq!(s.check_sequence(&mut c), SeqStatus::Tainted);
        assert_eq!(
            c.now() - before_check,
            f.params().sequence_check_cost,
            "check charges the CSR round trip"
        );
        assert!(t0 > SimTime::ZERO, "start charges too");
        // The next interval starts clean.
        assert_eq!(
            f.pio_stream(NodeId(0), &seg, 0).check_sequence(&mut c),
            SeqStatus::Ok
        );
    }

    #[test]
    fn sequence_check_clean_on_healthy_fabric() {
        let f = fabric();
        let seg = f.export(NodeId(1), 4096);
        let mut s = f.pio_stream(NodeId(0), &seg, 4096);
        let mut c = Clock::new();
        s.start_sequence(&mut c);
        s.write(&mut c, 0, &[7u8; 1024]).unwrap();
        s.barrier(&mut c);
        assert_eq!(s.check_sequence(&mut c), SeqStatus::Ok);
    }

    #[test]
    fn reader_applies_silent_flips() {
        let f = silent_fabric(1.0, 0.0);
        let seg = f.export(NodeId(1), 4096);
        seg.mem().fill(0, 4096, 0x00).unwrap();
        let r = f.pio_reader(NodeId(0), &seg);
        let mut c = Clock::new();
        let mut buf = [0u8; 512];
        let n = r.read_counted(&mut c, 0, &mut buf).unwrap();
        assert_eq!(n, 8, "one flip per 64 B read transaction");
        assert_eq!(buf.iter().filter(|&&b| b != 0).count(), 8);
        // The segment itself is untouched — reads corrupt in flight.
        assert!(seg.mem().snapshot().iter().all(|&b| b == 0));
    }

    #[test]
    fn local_streams_are_immune_to_silent_faults() {
        let f = silent_fabric(1.0, 1.0);
        let seg = f.export(NodeId(2), 4096);
        let mut s = f.pio_stream(NodeId(2), &seg, 4096);
        let mut c = Clock::new();
        s.write(&mut c, 0, &[0x42; 1024]).unwrap();
        assert!(seg.mem().snapshot()[..1024].iter().all(|&b| b == 0x42));
        assert_eq!(s.take_silent_faults(), 0);
    }
}
