//! Ring-link contention and traffic accounting.
//!
//! SCI is built from independent point-to-point segments; the effective
//! bandwidth of a transfer depends on how many concurrent transfers cross
//! each segment it uses (the paper's *segment utilisation*, Table 2) and on
//! ring saturation (goodput degrades once offered load exceeds ~90 % of the
//! nominal link rate — flow-control echoes and retries eat the rest).
//!
//! The registry tracks, per segment, the number of active streams and the
//! cumulative data / flow-control bytes injected, so harnesses can report
//! the paper's *load* and *efficiency* columns.

use crate::params::SciParams;
use crate::topology::{LinkId, Route, Topology};
use simclock::Bandwidth;
use std::sync::atomic::{AtomicU32, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Per-segment state.
#[derive(Debug, Default)]
struct LinkState {
    /// Streams currently crossing this segment.
    active: AtomicU32,
    /// Arrival-ordered sequence numbers of the streams currently open on
    /// this segment. This is the registry's *arbitration order*: shares
    /// resolve against the streams on this list, and the list mutates in
    /// the order streams open and close. Kept beside `active` (which
    /// stays a bare atomic so the share math is untouched).
    open: Mutex<Vec<u64>>,
    /// Cumulative payload bytes carried.
    data_bytes: AtomicU64,
    /// Cumulative flow-control / echo bytes carried.
    fc_bytes: AtomicU64,
}

/// Registry of all ring segments of a fabric.
#[derive(Debug)]
pub struct LinkRegistry {
    links: Vec<LinkState>,
    /// Monotonic arrival stamp handed to each stream as it opens. The
    /// assignment order *is* the arbitration order: under the event
    /// backend streams open in virtual-time dispatch order, so the
    /// sequence is deterministic; under the thread backend it is host
    /// order unless the program pins it (see `docs/ASYNC.md`).
    next_seq: AtomicU64,
}

impl LinkRegistry {
    /// A registry sized for `topology`.
    pub fn new(topology: &Topology) -> Self {
        let mut links = Vec::with_capacity(topology.link_count());
        links.resize_with(topology.link_count(), LinkState::default);
        LinkRegistry {
            links,
            next_seq: AtomicU64::new(0),
        }
    }

    /// Number of segments tracked.
    pub fn link_count(&self) -> usize {
        self.links.len()
    }

    /// Register an active stream on the **request path** of `route`.
    /// Echo/flow-control traffic is accounted as a load factor (see
    /// [`LinkRegistry::effective_bandwidth`]) rather than as streams —
    /// Table 2 shows neighbour transfers at full rate on a fully
    /// populated ring, so small echoes must not count as competitors.
    /// Returns a guard that deregisters on drop.
    pub fn start_stream(self: &Arc<Self>, route: &Route) -> StreamGuard {
        let seq = self.next_seq.fetch_add(1, Ordering::Relaxed);
        let links: Vec<LinkId> = route.links.clone();
        for l in &links {
            self.links[l.0].active.fetch_add(1, Ordering::Relaxed);
            self.links[l.0].open.lock().unwrap().push(seq);
        }
        StreamGuard {
            registry: Arc::clone(self),
            links,
            seq,
        }
    }

    /// Current number of active streams on a segment.
    pub fn active_on(&self, link: LinkId) -> u32 {
        self.links[link.0].active.load(Ordering::Relaxed)
    }

    /// Arrival-ordered sequence numbers of the streams currently open on
    /// `link` — the order contention shares resolve in. Deterministic
    /// under the event backend (streams open in virtual-time dispatch
    /// order); host order under the thread backend unless the program
    /// pins arrivals itself.
    pub fn open_streams(&self, link: LinkId) -> Vec<u64> {
        self.links[link.0].open.lock().unwrap().clone()
    }

    /// Total streams ever opened on this registry.
    pub fn streams_opened(&self) -> u64 {
        self.next_seq.load(Ordering::Relaxed)
    }

    /// The maximum active-stream count over the request path of `route`
    /// (the bottleneck utilisation).
    pub fn bottleneck_utilisation(&self, route: &Route) -> u32 {
        route
            .links
            .iter()
            .map(|l| self.active_on(*l))
            .max()
            .unwrap_or(0)
    }

    /// Effective bandwidth available to one stream following `route`,
    /// given the stream's own uncontended `demand` rate and current
    /// contention.
    ///
    /// Composition: each segment offers `goodput(load) * link_bw / n_active`
    /// to each of its streams; the stream gets the minimum share over its
    /// request path, never more than its own demand. The offered load is
    /// estimated as `n_active · demand / link_bw` (all concurrent streams
    /// of a symmetric benchmark want the same rate). Local routes are
    /// unconstrained by the ring.
    pub fn effective_bandwidth(
        &self,
        params: &SciParams,
        route: &Route,
        demand: Bandwidth,
    ) -> Bandwidth {
        if route.is_local() {
            return demand;
        }
        let mut bw = demand;
        for l in &route.links {
            let n = self.active_on(*l).max(1) as u64;
            // Offered load: n data streams plus their flow-control echoes.
            let offered = n as f64 * demand.mib_per_sec() * (1.0 + params.flow_control_overhead)
                / params.link_bandwidth.mib_per_sec();
            let goodput = params.ring_goodput(offered);
            let share = params.link_bandwidth.scale(goodput).share(n);
            bw = bw.min(share);
        }
        bw
    }

    /// Account traffic for a transfer of `payload` bytes over `route`:
    /// payload on the request path, flow-control echoes on the echo path.
    pub fn account(&self, params: &SciParams, route: &Route, payload: u64) {
        let fc = (payload as f64 * params.flow_control_overhead) as u64;
        for l in &route.links {
            self.links[l.0]
                .data_bytes
                .fetch_add(payload, Ordering::Relaxed);
        }
        for l in &route.echo_links {
            self.links[l.0].fc_bytes.fetch_add(fc, Ordering::Relaxed);
        }
    }

    /// Snapshot cumulative traffic.
    pub fn traffic(&self) -> TrafficStats {
        TrafficStats {
            per_link: self
                .links
                .iter()
                .map(|l| LinkTraffic {
                    data_bytes: l.data_bytes.load(Ordering::Relaxed),
                    fc_bytes: l.fc_bytes.load(Ordering::Relaxed),
                })
                .collect(),
        }
    }

    /// Reset traffic counters (benchmark repetitions).
    pub fn reset_traffic(&self) {
        for l in &self.links {
            l.data_bytes.store(0, Ordering::Relaxed);
            l.fc_bytes.store(0, Ordering::Relaxed);
        }
    }
}

/// RAII registration of one stream on a set of segments.
#[derive(Debug)]
pub struct StreamGuard {
    registry: Arc<LinkRegistry>,
    links: Vec<LinkId>,
    seq: u64,
}

impl StreamGuard {
    /// The arrival stamp this stream was assigned when it opened.
    pub fn seq(&self) -> u64 {
        self.seq
    }
}

impl Drop for StreamGuard {
    fn drop(&mut self) {
        for l in &self.links {
            self.registry.links[l.0]
                .active
                .fetch_sub(1, Ordering::Relaxed);
            self.registry.links[l.0]
                .open
                .lock()
                .unwrap()
                .retain(|&s| s != self.seq);
        }
    }
}

/// Cumulative bytes carried by one segment.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct LinkTraffic {
    /// Payload bytes.
    pub data_bytes: u64,
    /// Flow-control / echo bytes.
    pub fc_bytes: u64,
}

impl LinkTraffic {
    /// Total wire bytes.
    pub fn total(&self) -> u64 {
        self.data_bytes + self.fc_bytes
    }
}

/// Snapshot of traffic over all segments.
#[derive(Clone, Debug, Default)]
pub struct TrafficStats {
    /// Per-segment counters, indexed by `LinkId`.
    pub per_link: Vec<LinkTraffic>,
}

impl TrafficStats {
    /// The busiest segment's total bytes.
    pub fn max_link_bytes(&self) -> u64 {
        self.per_link
            .iter()
            .map(LinkTraffic::total)
            .max()
            .unwrap_or(0)
    }

    /// Sum of payload bytes over all segments.
    pub fn total_data(&self) -> u64 {
        self.per_link.iter().map(|l| l.data_bytes).sum()
    }

    /// Sum of flow-control bytes over all segments.
    pub fn total_fc(&self) -> u64 {
        self.per_link.iter().map(|l| l.fc_bytes).sum()
    }

    /// Per-segment traffic as explicit `(LinkId, LinkTraffic)` pairs, so
    /// tests and the tracer can assert on individual segment utilisation
    /// instead of only the totals.
    pub fn per_link(&self) -> Vec<(LinkId, LinkTraffic)> {
        self.per_link
            .iter()
            .enumerate()
            .map(|(i, t)| (LinkId(i), *t))
            .collect()
    }
}

impl std::fmt::Display for TrafficStats {
    /// One line per segment (`L3: 4096 data + 327 fc B`), then a totals
    /// line. Segments that carried nothing are elided.
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        for (id, t) in self.per_link() {
            if t.total() == 0 {
                continue;
            }
            writeln!(f, "L{}: {} data + {} fc B", id.0, t.data_bytes, t.fc_bytes)?;
        }
        write!(
            f,
            "total: {} data + {} fc B over {} links (busiest {} B)",
            self.total_data(),
            self.total_fc(),
            self.per_link.len(),
            self.max_link_bytes()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topology::NodeId;

    fn setup() -> (SciParams, Topology, Arc<LinkRegistry>) {
        let t = Topology::ringlet(8);
        let r = Arc::new(LinkRegistry::new(&t));
        (SciParams::default(), t, r)
    }

    #[test]
    fn stream_guard_registers_and_releases() {
        let (_, t, reg) = setup();
        let route = t.route(NodeId(0), NodeId(3));
        {
            let _g = reg.start_stream(&route);
            assert_eq!(reg.active_on(LinkId(0)), 1);
            assert_eq!(reg.active_on(LinkId(2)), 1);
            // Echo path is NOT registered as a stream (it is load, not a
            // competitor).
            assert_eq!(reg.active_on(LinkId(5)), 0);
        }
        assert_eq!(reg.active_on(LinkId(0)), 0);
    }

    #[test]
    fn single_stream_gets_its_demand() {
        let (p, t, reg) = setup();
        let route = t.route(NodeId(0), NodeId(1));
        let _g = reg.start_stream(&route);
        let bw = reg.effective_bandwidth(&p, &route, p.node_injection_cap);
        assert_eq!(bw, p.node_injection_cap);
        // Even a demand above the link rate is honoured when uncontended
        // enough (one stream, goodput 1 below onset).
        let raw = reg.effective_bandwidth(&p, &route, p.pio_write_peak);
        assert_eq!(raw, p.pio_write_peak);
    }

    #[test]
    fn eight_streams_on_one_segment_shrink_share() {
        let (p, t, reg) = setup();
        let route = t.route(NodeId(0), NodeId(1));
        let guards: Vec<_> = (0..8).map(|_| reg.start_stream(&route)).collect();
        let bw = reg.effective_bandwidth(&p, &route, p.node_injection_cap);
        // Table 2 anchor: ~63 MiB/s per stream at utilisation 8.
        assert!(bw.mib_per_sec() < 85.0, "got {bw}");
        assert!(bw.mib_per_sec() > 45.0, "got {bw}");
        drop(guards);
    }

    #[test]
    fn local_route_not_ring_limited() {
        let (p, t, reg) = setup();
        let route = t.route(NodeId(2), NodeId(2));
        let bw = reg.effective_bandwidth(&p, &route, p.cache.mem_copy);
        assert_eq!(bw, p.cache.mem_copy);
    }

    #[test]
    fn accounting_tracks_request_and_echo() {
        let (p, t, reg) = setup();
        let route = t.route(NodeId(0), NodeId(2));
        reg.account(&p, &route, 1000);
        let traffic = reg.traffic();
        assert_eq!(traffic.per_link[0].data_bytes, 1000);
        assert_eq!(traffic.per_link[1].data_bytes, 1000);
        assert_eq!(traffic.per_link[2].data_bytes, 0);
        assert_eq!(traffic.per_link[2].fc_bytes, 80); // 8% of payload
        assert_eq!(traffic.total_data(), 2000);
        reg.reset_traffic();
        assert_eq!(reg.traffic().total_data(), 0);
    }

    #[test]
    fn per_link_pairs_and_display() {
        let (p, t, reg) = setup();
        let route = t.route(NodeId(0), NodeId(2));
        reg.account(&p, &route, 1000);
        let traffic = reg.traffic();
        let pairs = traffic.per_link();
        assert_eq!(pairs.len(), traffic.per_link.len());
        assert_eq!(pairs[0], (LinkId(0), traffic.per_link[0]));
        assert_eq!(pairs[1].1.data_bytes, 1000);
        let rendered = traffic.to_string();
        assert!(rendered.contains("L0: 1000 data + 0 fc B"), "{rendered}");
        assert!(rendered.contains("L2: 0 data + 80 fc B"), "{rendered}");
        assert!(
            rendered.contains("total: 2000 data + 480 fc B"),
            "{rendered}"
        );
        // Idle links are elided.
        assert!(!rendered.contains("L1: 0 data + 0"), "{rendered}");
    }

    #[test]
    fn bottleneck_utilisation_sees_peak() {
        let (_, t, reg) = setup();
        let long = t.route(NodeId(0), NodeId(4));
        let short = t.route(NodeId(2), NodeId(3));
        let _g1 = reg.start_stream(&long);
        let _g2 = reg.start_stream(&short);
        // Link 2 carries both.
        assert_eq!(reg.bottleneck_utilisation(&long), 2);
        assert_eq!(reg.bottleneck_utilisation(&short), 2);
    }

    #[test]
    fn arrival_sequence_is_the_arbitration_order() {
        let (_, t, reg) = setup();
        let long = t.route(NodeId(0), NodeId(3)); // L0 L1 L2
        let short = t.route(NodeId(2), NodeId(3)); // L2
        let g1 = reg.start_stream(&long);
        let g2 = reg.start_stream(&short);
        let g3 = reg.start_stream(&short);
        // Stamps are handed out in open order and every shared segment
        // lists its competitors in that order.
        assert!(g1.seq() < g2.seq() && g2.seq() < g3.seq());
        assert_eq!(
            reg.open_streams(LinkId(2)),
            vec![g1.seq(), g2.seq(), g3.seq()]
        );
        assert_eq!(reg.open_streams(LinkId(0)), vec![g1.seq()]);
        // Closing the *middle* competitor keeps the survivors in arrival
        // order — the list is order-preserving, not a stack.
        drop(g2);
        assert_eq!(reg.open_streams(LinkId(2)), vec![g1.seq(), g3.seq()]);
        drop(g1);
        drop(g3);
        assert!(reg.open_streams(LinkId(2)).is_empty());
        assert_eq!(reg.streams_opened(), 3);
    }

    #[test]
    fn concurrent_guards_from_threads() {
        use std::sync::Arc;
        let t = Topology::ringlet(8);
        let reg = Arc::new(LinkRegistry::new(&t));
        let mut handles = Vec::new();
        for i in 0..8 {
            let reg = Arc::clone(&reg);
            let t = t.clone();
            handles.push(std::thread::spawn(move || {
                let route = t.route(NodeId(i), NodeId((i + 1) % 8));
                for _ in 0..1000 {
                    let _g = reg.start_stream(&route);
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        for l in 0..8 {
            assert_eq!(reg.active_on(LinkId(l)), 0);
        }
    }
}
