//! Property-based tests of the fabric cost model's sanity invariants:
//! costs are monotone in bytes, contention never *increases* a stream's
//! bandwidth, routes are well-formed on arbitrary topologies, and data
//! integrity holds under any split of a transfer.

use proptest::prelude::*;
use sci_fabric::{Fabric, FabricSpec, NodeId, Topology};
use simclock::{Clock, SimTime};

fn fabric(nodes: usize) -> std::sync::Arc<Fabric> {
    Fabric::new(FabricSpec {
        topology: Topology::ringlet(nodes),
        ..FabricSpec::default()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Writing more bytes never costs less virtual time.
    #[test]
    fn write_cost_monotone_in_bytes(a in 1usize..32768, b in 1usize..32768) {
        let (small, large) = if a <= b { (a, b) } else { (b, a) };
        let f = fabric(4);
        let seg = f.export(NodeId(1), 64 * 1024);
        let cost = |len: usize| {
            let mut s = f.pio_stream(NodeId(0), &seg, len);
            let mut c = Clock::new();
            s.write(&mut c, 0, &vec![0u8; len]).unwrap();
            s.barrier(&mut c);
            c.now()
        };
        prop_assert!(cost(small) <= cost(large), "cost not monotone: {small} vs {large}");
    }

    /// A transfer split into consecutive pieces costs at least as much as
    /// one contiguous write (per-burst overheads never help), and the data
    /// lands identically.
    #[test]
    fn split_writes_cost_more_but_deliver_same(len in 64usize..16384, pieces in 1usize..16) {
        let f = fabric(2);
        let seg_a = f.export(NodeId(1), 64 * 1024);
        let seg_b = f.export(NodeId(1), 64 * 1024);
        let data: Vec<u8> = (0..len).map(|i| (i * 31) as u8).collect();

        let mut c1 = Clock::new();
        let mut s1 = f.pio_stream(NodeId(0), &seg_a, len);
        s1.write(&mut c1, 0, &data).unwrap();
        s1.barrier(&mut c1);

        let mut c2 = Clock::new();
        let mut s2 = f.pio_stream(NodeId(0), &seg_b, len);
        let chunk = len.div_ceil(pieces);
        let mut off = 0;
        while off < len {
            let end = (off + chunk).min(len);
            s2.write(&mut c2, off, &data[off..end]).unwrap();
            off = end;
        }
        s2.barrier(&mut c2);

        prop_assert!(c2.now() >= c1.now(), "splitting made it cheaper");
        let mut out_a = vec![0u8; len];
        let mut out_b = vec![0u8; len];
        seg_a.mem().read(0, &mut out_a).unwrap();
        seg_b.mem().read(0, &mut out_b).unwrap();
        prop_assert_eq!(out_a, out_b);
    }

    /// Contention never increases a stream's effective bandwidth.
    #[test]
    fn contention_is_monotone(extra in 0u32..12) {
        let f = fabric(8);
        let route = f.topology().route(NodeId(0), NodeId(3));
        let demand = f.params().node_injection_cap;
        let base = f.links().effective_bandwidth(f.params(), &route, demand);
        let _guards: Vec<_> = (0..extra)
            .map(|_| f.links().start_stream(&route))
            .collect();
        let contended = f.links().effective_bandwidth(f.params(), &route, demand);
        prop_assert!(contended <= base, "contention increased bandwidth");
    }

    /// Routes on arbitrary ring sizes: request + echo cover the ring
    /// exactly once; distances are consistent with link counts.
    #[test]
    fn ring_routes_well_formed(nodes in 2usize..32, a in 0usize..32, b in 0usize..32) {
        let t = Topology::ringlet(nodes);
        let src = NodeId(a % nodes);
        let dst = NodeId(b % nodes);
        let r = t.route(src, dst);
        if src == dst {
            prop_assert!(r.is_local());
        } else {
            let mut all: Vec<usize> =
                r.links.iter().chain(r.echo_links.iter()).map(|l| l.0).collect();
            all.sort_unstable();
            prop_assert_eq!(all, (0..nodes).collect::<Vec<_>>());
            prop_assert_eq!(r.hops(), (dst.0 + nodes - src.0) % nodes);
        }
    }

    /// Multi-ring routes never index outside the link table and cross at
    /// most one switch.
    #[test]
    fn multi_ring_routes_bounded(rings in 1usize..6, per in 1usize..8, a in 0usize..48, b in 0usize..48) {
        let t = Topology::multi_ring(rings, per);
        let n = t.node_count();
        let src = NodeId(a % n);
        let dst = NodeId(b % n);
        let r = t.route(src, dst);
        for l in r.links.iter().chain(r.echo_links.iter()) {
            prop_assert!(l.0 < t.link_count(), "link {} out of range", l.0);
        }
        prop_assert!(r.switch_crossings <= 1);
    }

    /// Reads return exactly what was written for arbitrary offsets/sizes.
    #[test]
    fn read_after_write_integrity(off in 0usize..1000, len in 1usize..4096) {
        let f = fabric(3);
        let seg = f.export(NodeId(2), 8192);
        prop_assume!(off + len <= 8192);
        let data: Vec<u8> = (0..len).map(|i| (i ^ off) as u8).collect();
        let mut c = Clock::new();
        let mut s = f.pio_stream(NodeId(0), &seg, len);
        s.write(&mut c, off, &data).unwrap();
        s.barrier(&mut c);
        let r = f.pio_reader(NodeId(1), &seg);
        let mut out = vec![0u8; len];
        r.read(&mut c, off, &mut out).unwrap();
        prop_assert_eq!(out, data);
        prop_assert!(c.now() > SimTime::ZERO);
    }
}
