//! Randomized tests of the fabric cost model's sanity invariants: costs
//! are monotone in bytes, contention never *increases* a stream's
//! bandwidth, routes are well-formed on arbitrary topologies, and data
//! integrity holds under any split of a transfer.
//!
//! Deterministic seeded randomness (`SplitMix64`) replaces an external
//! property-testing framework.

use sci_fabric::{Fabric, FabricSpec, NodeId, Topology};
use simclock::{Clock, SimTime, SplitMix64};

fn fabric(nodes: usize) -> std::sync::Arc<Fabric> {
    Fabric::new(FabricSpec {
        topology: Topology::ringlet(nodes),
        ..FabricSpec::default()
    })
}

/// Writing more bytes never costs less virtual time.
#[test]
fn write_cost_monotone_in_bytes() {
    let mut rng = SplitMix64::new(0xFAB1);
    for _ in 0..64 {
        let a = rng.next_range(1, 32767) as usize;
        let b = rng.next_range(1, 32767) as usize;
        let (small, large) = if a <= b { (a, b) } else { (b, a) };
        let f = fabric(4);
        let seg = f.export(NodeId(1), 64 * 1024);
        let cost = |len: usize| {
            let mut s = f.pio_stream(NodeId(0), &seg, len);
            let mut c = Clock::new();
            s.write(&mut c, 0, &vec![0u8; len]).unwrap();
            s.barrier(&mut c);
            c.now()
        };
        assert!(
            cost(small) <= cost(large),
            "cost not monotone: {small} vs {large}"
        );
    }
}

/// A transfer split into consecutive pieces costs at least as much as one
/// contiguous write (per-burst overheads never help), and the data lands
/// identically.
#[test]
fn split_writes_cost_more_but_deliver_same() {
    let mut rng = SplitMix64::new(0xFAB2);
    for _ in 0..128 {
        let len = rng.next_range(64, 16383) as usize;
        let pieces = rng.next_range(1, 15) as usize;
        let f = fabric(2);
        let seg_a = f.export(NodeId(1), 64 * 1024);
        let seg_b = f.export(NodeId(1), 64 * 1024);
        let data: Vec<u8> = (0..len).map(|i| (i * 31) as u8).collect();

        let mut c1 = Clock::new();
        let mut s1 = f.pio_stream(NodeId(0), &seg_a, len);
        s1.write(&mut c1, 0, &data).unwrap();
        s1.barrier(&mut c1);

        let mut c2 = Clock::new();
        let mut s2 = f.pio_stream(NodeId(0), &seg_b, len);
        let chunk = len.div_ceil(pieces);
        let mut off = 0;
        while off < len {
            let end = (off + chunk).min(len);
            s2.write(&mut c2, off, &data[off..end]).unwrap();
            off = end;
        }
        s2.barrier(&mut c2);

        assert!(c2.now() >= c1.now(), "splitting made it cheaper");
        let mut out_a = vec![0u8; len];
        let mut out_b = vec![0u8; len];
        seg_a.mem().read(0, &mut out_a).unwrap();
        seg_b.mem().read(0, &mut out_b).unwrap();
        assert_eq!(out_a, out_b);
    }
}

/// Contention never increases a stream's effective bandwidth.
#[test]
fn contention_is_monotone() {
    let mut rng = SplitMix64::new(0xFAB3);
    for _ in 0..64 {
        let extra = rng.next_below(12) as u32;
        let f = fabric(8);
        let route = f.topology().route(NodeId(0), NodeId(3));
        let demand = f.params().node_injection_cap;
        let base = f.links().effective_bandwidth(f.params(), &route, demand);
        let _guards: Vec<_> = (0..extra).map(|_| f.links().start_stream(&route)).collect();
        let contended = f.links().effective_bandwidth(f.params(), &route, demand);
        assert!(contended <= base, "contention increased bandwidth");
    }
}

/// Routes on arbitrary ring sizes: request + echo cover the ring exactly
/// once; distances are consistent with link counts.
#[test]
fn ring_routes_well_formed() {
    let mut rng = SplitMix64::new(0xFAB4);
    for _ in 0..512 {
        let nodes = rng.next_range(2, 31) as usize;
        let src = NodeId(rng.next_below(32) as usize % nodes);
        let dst = NodeId(rng.next_below(32) as usize % nodes);
        let t = Topology::ringlet(nodes);
        let r = t.route(src, dst);
        if src == dst {
            assert!(r.is_local());
        } else {
            let mut all: Vec<usize> = r
                .links
                .iter()
                .chain(r.echo_links.iter())
                .map(|l| l.0)
                .collect();
            all.sort_unstable();
            assert_eq!(all, (0..nodes).collect::<Vec<_>>());
            assert_eq!(r.hops(), (dst.0 + nodes - src.0) % nodes);
        }
    }
}

/// Multi-ring routes never index outside the link table and cross at most
/// one switch.
#[test]
fn multi_ring_routes_bounded() {
    let mut rng = SplitMix64::new(0xFAB5);
    for _ in 0..512 {
        let rings = rng.next_range(1, 5) as usize;
        let per = rng.next_range(1, 7) as usize;
        let t = Topology::multi_ring(rings, per);
        let n = t.node_count();
        let src = NodeId(rng.next_below(48) as usize % n);
        let dst = NodeId(rng.next_below(48) as usize % n);
        let r = t.route(src, dst);
        for l in r.links.iter().chain(r.echo_links.iter()) {
            assert!(l.0 < t.link_count(), "link {} out of range", l.0);
        }
        assert!(r.switch_crossings <= 1);
    }
}

/// Reads return exactly what was written for arbitrary offsets/sizes.
#[test]
fn read_after_write_integrity() {
    let mut rng = SplitMix64::new(0xFAB6);
    for _ in 0..128 {
        let off = rng.next_below(1000) as usize;
        let len = rng.next_range(1, 4095) as usize;
        if off + len > 8192 {
            continue;
        }
        let f = fabric(3);
        let seg = f.export(NodeId(2), 8192);
        let data: Vec<u8> = (0..len).map(|i| (i ^ off) as u8).collect();
        let mut c = Clock::new();
        let mut s = f.pio_stream(NodeId(0), &seg, len);
        s.write(&mut c, off, &data).unwrap();
        s.barrier(&mut c);
        let r = f.pio_reader(NodeId(1), &seg);
        let mut out = vec![0u8; len];
        r.read(&mut c, off, &mut out).unwrap();
        assert_eq!(out, data);
        assert!(c.now() > SimTime::ZERO);
    }
}
