//! Observability quickstart: run a tiny workload with the recorder on,
//! inspect counters and the wait-state profile in-process, and write
//! the Chrome trace + counter dump + `PROFILE` document.
//!
//! Run: `cargo run --release --example trace_quickstart`
//! Then open `trace_quickstart.json` in Perfetto (ui.perfetto.dev) or
//! `chrome://tracing` — one lane per rank, virtual time on the axis.

use scimpi::prelude::*;

fn main() {
    let spec = ClusterSpec::ringlet(4).obs(
        ObsConfig::with_trace("trace_quickstart.json")
            .and_counters("trace_quickstart_counters.jsonl")
            .and_profile("PROFILE_trace_quickstart.json"),
    );

    run(spec, |rank| {
        // A small eager message and a large rendezvous message 0 -> 1.
        if rank.rank() == 0 {
            rank.send(1, 0, &[1u8; 256]).done();
            rank.send(1, 1, &vec![2u8; 128 * 1024]).done();
        } else if rank.rank() == 1 {
            let mut small = [0u8; 256];
            rank.recv(Source::Rank(0), TagSel::Value(0), &mut small)
                .done();
            let mut large = vec![0u8; 128 * 1024];
            rank.recv(Source::Rank(0), TagSel::Value(1), &mut large)
                .done();
        }

        // A shared window and a direct one-sided put 2 -> 3.
        let mem = rank.alloc_mem(4096).done();
        let mut win = rank.win_create(WinMemory::Alloc(mem)).done();
        win.fence(rank).done();
        if rank.rank() == 2 {
            win.put(rank, 3, 0, b"one-sided").done();
        }
        win.fence(rank).done();
    });

    // Counters survive the run (the files were written at teardown, but
    // the registry is still readable until the next reset).
    println!("protocol decisions taken:");
    for (name, value) in obs::counters_snapshot() {
        if value > 0 {
            println!("  {name:<22} {value}");
        }
    }
    // The wait-state profile is also readable in-process: where each
    // rank's virtual time went, and which dependency chain bounded the
    // run.
    let profile = obs::report::last_profile().expect("profile built at teardown");
    println!("\n{}", obs::report::render_table(&profile));
    println!("{}", obs::report::render_critical_path(&profile));

    println!("wrote trace_quickstart.json (open in Perfetto / chrome://tracing)");
    println!("wrote trace_quickstart_counters.jsonl");
    println!("wrote PROFILE_trace_quickstart.json");
}
