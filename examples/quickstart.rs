//! Quickstart: the three things this library does.
//!
//! 1. Launch a simulated SCI cluster and pass messages between ranks.
//! 2. Send non-contiguous data described by an MPI datatype — packed
//!    straight into remote memory by `direct_pack_ff`.
//! 3. Use MPI-2 one-sided communication on a window in SCI shared memory.
//!
//! Run: `cargo run --release --example quickstart`

use mpi_datatype::{Committed, Datatype};
use scimpi::prelude::*;

fn main() {
    // A 4-node SCI ringlet, one rank per node — the paper's testbed shape.
    let spec = ClusterSpec::ringlet(4).build();

    let reports = run(spec, |rank| {
        let me = rank.rank();
        let n = rank.size();
        let mut log = Vec::new();

        // --- 1. Two-sided messaging -----------------------------------
        let next = (me + 1) % n;
        let prev = (me + n - 1) % n;
        rank.send(next, 1, format!("hello from rank {me}").as_bytes())
            .done();
        let mut buf = vec![0u8; 64];
        let st = rank
            .recv(Source::Rank(prev), TagSel::Value(1), &mut buf)
            .done();
        log.push(format!(
            "recv: \"{}\"",
            String::from_utf8_lossy(&buf[..st.len])
        ));
        rank.barrier();

        // --- 2. Non-contiguous datatype send ---------------------------
        // Every second double of a 1024-element array (a strided vector),
        // the shape halo exchanges produce.
        let dt = Datatype::vector(512, 1, 2, &Datatype::double());
        let committed = Committed::commit(&dt);
        if me == 0 {
            let data: Vec<u8> = (0..committed.extent()).map(|i| i as u8).collect();
            rank.send_typed(1, 2, &committed, 1, &data, 0).done();
            log.push(format!(
                "sent strided vector: {} blocks of {} bytes each",
                committed.blocks_per_instance(),
                committed.min_block_len()
            ));
        } else if me == 1 {
            let mut data = vec![0u8; committed.extent()];
            rank.recv_typed(
                Source::Rank(0),
                TagSel::Value(2),
                &committed,
                1,
                &mut data,
                0,
            )
            .done();
            log.push("received strided vector via direct_pack_ff".to_string());
        }
        rank.barrier();

        // --- 3. One-sided communication --------------------------------
        let mem = rank.alloc_mem(4096).done(); // SCI shared memory: direct RMA
        let mut win = rank.win_create(WinMemory::Alloc(mem)).done();
        win.fence(rank).done();
        if me == 0 {
            // Write into every other rank's window without their
            // involvement.
            for target in 1..n {
                let msg = format!("rma to {target}");
                win.put(rank, target, 0, msg.as_bytes()).done();
            }
        }
        win.fence(rank).done();
        if me != 0 {
            let mut got = vec![0u8; 8];
            win.read_local(rank, 0, &mut got);
            log.push(format!(
                "window after fence: \"{}\"",
                String::from_utf8_lossy(&got)
            ));
        }
        win.fence(rank).done();

        (me, rank.wtime(), log)
    });

    for (me, t, log) in reports {
        println!("rank {me} (virtual time {:.1} us):", t * 1e6);
        for line in log {
            println!("    {line}");
        }
    }
}
