//! A tour of the datatype engine: how the constructors of §3.1 flatten
//! into the committed leaf/stack representation of §3.3 (Figures 3 and 5),
//! and what that means for the transfer engines.
//!
//! Run: `cargo run --release --example datatype_gallery`

use mpi_datatype::{subarray, ArrayOrder, Committed, Datatype};

fn show(name: &str, dt: &Datatype) {
    let c = Committed::commit(dt);
    println!("{name}");
    println!("  type    : {dt}");
    println!(
        "  size/extent: {} / {} bytes ({} gaps)",
        dt.size(),
        dt.extent(),
        dt.extent().saturating_sub(dt.size())
    );
    println!(
        "  committed : {} leaves, {} basic blocks/instance, min block {} B",
        c.leaves().len(),
        c.blocks_per_instance(),
        c.min_block_len()
    );
    for (i, leaf) in c.leaves().iter().enumerate() {
        let stack: Vec<String> = leaf
            .stack
            .iter()
            .map(|l| format!("(count {}, extent {})", l.count, l.extent))
            .collect();
        println!(
            "    leaf {i}: {} B at disp {}, stack [{}]",
            leaf.len,
            leaf.first,
            stack.join(" ")
        );
    }
    println!();
}

fn main() {
    println!("== datatype gallery: commit-time flattening ==\n");

    show(
        "contiguous run (one memcpy)",
        &Datatype::contiguous(100, &Datatype::double()),
    );

    show(
        "the noncontig benchmark vector (Fig. 7): 128 B blocks, equal gaps",
        &Datatype::vector(2048, 16, 32, &Datatype::double()),
    );

    // Figure 3 / Figure 5: vector of struct{int, char[3]} with gaps.
    let chars = Datatype::contiguous(3, &Datatype::byte());
    let s = Datatype::structure(&[(1, 0, Datatype::int()), (1, 4, chars)]);
    show(
        "Figure 3 struct: int + char[3] (adjacent fields merge to 7 B)",
        &s,
    );
    show(
        "Figure 5: hvector of the struct (one leaf, one stack level)",
        &Datatype::hvector(4, 1, 16, &s),
    );

    show(
        "indexed: ragged blocks (adjacent ones merge)",
        &Datatype::indexed(&[(2, 0), (3, 2), (1, 9)], &Datatype::int()),
    );

    show(
        "ocean east boundary (Fig. 2): double-strided subarray",
        &subarray(
            &[4, 6, 8],
            &[4, 6, 1],
            &[0, 0, 7],
            ArrayOrder::C,
            &Datatype::double(),
        ),
    );

    // What the flattening buys: count the work both engines do.
    let dt = Datatype::vector(4096, 2, 4, &Datatype::double());
    let c = Committed::commit(&dt);
    let src = vec![0u8; dt.extent()];
    let mut out = Vec::new();
    let generic = mpi_datatype::tree::pack(&dt, 1, &src, 0, &mut out);
    let mut sink = mpi_datatype::VecSink::default();
    let ff = mpi_datatype::pack_ff(&c, 1, &src, 0, 0, usize::MAX, &mut sink).unwrap();
    println!("== engine work for vector(4096 x 16 B) ==");
    println!(
        "  generic: {} blocks, {} tree-node visits",
        generic.blocks, generic.visits
    );
    println!(
        "  ff     : {} blocks, {} stack iterations (O(1) state per block)",
        ff.blocks, ff.visits
    );
    println!("\nsame bytes out of both engines: {}", out == sink.data);
}
