//! Error-handling quickstart: run with `ErrorMode::ErrorsReturn` so fabric
//! failures surface as `Result`s instead of aborting the run, then recover
//! from an injected cable pull by hand.
//!
//! The scenario mirrors what the fault-tolerant layer does on a real
//! SCI cluster: with every direct route to the target severed, a one-sided
//! `put` first reports the failure, the retry demotes the target to
//! control-message emulation and succeeds, and the fence after the cables
//! return re-promotes the target to the direct path.
//!
//! Run: `cargo run --release --example errors_quickstart`

use sci_fabric::LinkId;
use scimpi::prelude::*;

fn main() {
    // Two rings of four nodes: node 0 reaches node 2 either via [0,1] or
    // via the reverse direction [3,2]. ErrorsReturn turns every escalation
    // into an `Err` the application can handle.
    let spec = ClusterSpec::multi_ring(2, 4)
        .errors(ErrorMode::ErrorsReturn)
        .obs(ObsConfig::enabled());

    run(spec, |rank| {
        let mem = rank.alloc_mem(4096).done();
        let mut win = rank.win_create(WinMemory::Alloc(mem)).done();
        win.fence(rank).expect("clean fence");

        if rank.rank() == 0 {
            // Pull both cables on the 0→2 routes: the direct path is gone.
            rank.fabric().faults().fail_link(LinkId(1));
            rank.fabric().faults().fail_link(LinkId(2));

            // First attempt: the direct path fails and, under
            // ErrorsReturn, the error comes back instead of panicking.
            match win.put(rank, 2, 0, b"hello, remote memory") {
                Ok(()) => println!("rank 0: unexpected success (routes are down)"),
                Err(e) => println!("rank 0: direct put failed as expected: {e}"),
            }

            // Retry: the failure count crossed the fallback threshold, so
            // the window demotes target 2 and serves the put through
            // control-message emulation — same bytes, higher latency.
            win.put(rank, 2, 0, b"hello, remote memory")
                .expect("the emulated path must absorb the severed routes");
            println!("rank 0: retry delivered via emulation");

            // Plug the cables back in; the next fence probes the healed
            // primary route and re-promotes the target.
            rank.fabric().faults().restore_link(LinkId(1));
            rank.fabric().faults().restore_link(LinkId(2));
        }

        win.fence(rank).expect("clean fence");

        if rank.rank() == 0 {
            win.put(rank, 2, 2048, b"direct again")
                .expect("the healed route must serve direct puts");
            println!("rank 0: post-heal put went direct");
        }
        win.fence(rank).expect("clean fence");

        if rank.rank() == 2 {
            let mut buf = [0u8; 20];
            win.read_local(rank, 0, &mut buf);
            assert_eq!(&buf, b"hello, remote memory");
            println!("rank 2: payload arrived bit-perfect despite the outage");
        }
        win.fence(rank).expect("clean fence");
    });

    println!("\nrecovery machinery engaged:");
    for (name, value) in obs::counters_snapshot() {
        if value > 0 && (name.starts_with("osc_") || name.contains("route")) {
            println!("  {name:<22} {value}");
        }
    }
}
