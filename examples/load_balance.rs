//! Dynamic load balancing with passive-target RMA — the paper's second
//! motivating use case (§4: "dynamic load balancing with strongly varying
//! task sizes, e.g. in computational chemistry").
//!
//! A global task counter lives in rank 0's window. Workers grab the next
//! task index with a lock/accumulate/read critical section (an atomic
//! fetch-and-add built from MPI-2 primitives) and process tasks of wildly
//! varying cost. No rank ever polls for requests — exactly the point of
//! one-sided communication.
//!
//! Run: `cargo run --release --example load_balance`

use scimpi::prelude::*;
use simclock::{SimDuration, SplitMix64};

const TASKS: usize = 200;

fn main() {
    let ranks = 4;
    let results = run(ClusterSpec::ringlet(ranks), move |r| {
        let me = r.rank();
        // Window: one i64 counter at rank 0 (everyone contributes their
        // 8 bytes so the window exists everywhere; only rank 0's is used).
        let mem = r.alloc_mem(8).done();
        let mut win = r.win_create(WinMemory::Alloc(mem)).done();
        win.write_local(r, 0, &0i64.to_le_bytes());
        win.fence(r).done();

        // Deterministic per-task costs, heavy-tailed: most tasks cheap,
        // a few 50x more expensive.
        let mut rng = SplitMix64::new(777);
        let costs: Vec<u64> = (0..TASKS)
            .map(|_| {
                if rng.chance(0.08) {
                    2500 + rng.next_below(2500)
                } else {
                    30 + rng.next_below(90)
                }
            })
            .collect();

        let mut done = Vec::new();
        loop {
            // Atomic fetch-and-add(1) on the global counter: lock the
            // target, read the value, bump it, unlock.
            let task = win
                .locked(r, 0, |w, r| {
                    let mut cur = [0u8; 8];
                    w.get(r, 0, 0, &mut cur).expect("counter read");
                    let t = i64::from_le_bytes(cur);
                    w.accumulate(r, 0, 0, AccumulateOp::SumI64, &1i64.to_le_bytes())
                        .expect("counter bump");
                    t
                })
                .done();
            if task as usize >= TASKS {
                break;
            }
            // "Process" the task: charge its virtual cost.
            r.compute(SimDuration::from_us(costs[task as usize]));
            done.push(task as usize);
        }
        r.barrier();
        let my_work: f64 = done.iter().map(|&t| costs[t] as f64).sum();
        let mut totals = [my_work, done.len() as f64];
        r.allreduce(&mut totals, ReduceOp::Sum).done();
        let finish = r.now();
        (me, done, my_work, totals, finish)
    });

    println!("dynamic load balancing: {TASKS} heavy-tailed tasks over {ranks} workers\n");
    let mut all_tasks: Vec<usize> = Vec::new();
    let total_work = results[0].3[0];
    for (me, done, my_work, totals, finish) in &results {
        assert_eq!(totals[1] as usize, TASKS, "task count mismatch");
        println!(
            "rank {me}: {:>3} tasks, {:>7.0} us work ({:>4.1}% of total), finished at {}",
            done.len(),
            my_work.abs(),
            (100.0 * my_work / total_work).abs(),
            finish
        );
        all_tasks.extend(done.iter().copied());
    }
    // Every task executed exactly once.
    all_tasks.sort_unstable();
    let expected: Vec<usize> = (0..TASKS).collect();
    assert_eq!(all_tasks, expected, "tasks lost or duplicated");

    let finishes: Vec<f64> = results.iter().map(|r| r.4.as_ps() as f64).collect();
    let imbalance = finishes.iter().cloned().fold(0.0, f64::max)
        / (finishes.iter().sum::<f64>() / finishes.len() as f64);
    println!("\nevery task ran exactly once; finish-time imbalance {imbalance:.3}");
    println!("(self-scheduling keeps it near 1.0 despite the 50x cost spread)");
}
