//! Sparse matrix-vector product with one-sided communication — the
//! irregular-data use case that motivates MPI-2 RMA in §4 of the paper.
//!
//! The vector `x` is distributed across ranks; the sparse matrix rows
//! owned by each rank reference arbitrary (irregular) entries of `x`.
//! With two-sided communication every rank would need to service
//! requests for its piece; with one-sided `MPI_Get` each rank simply
//! fetches the entries it needs from the exposed windows.
//!
//! Run: `cargo run --release --example sparse_matrix`

use mpi_datatype::typed;
use scimpi::prelude::*;
use simclock::{SimDuration, SplitMix64};

const N: usize = 2048; // global vector length
const ROWS_PER_RANK: usize = 128;
const NNZ_PER_ROW: usize = 12;

fn main() {
    let ranks = 4;
    let local_n = N / ranks;
    let results = run(ClusterSpec::ringlet(ranks), move |r| {
        let me = r.rank();
        // --- distributed vector x in a window -------------------------
        let x_local: Vec<f64> = (0..local_n)
            .map(|i| ((me * local_n + i) as f64).sin())
            .collect();
        let mem = r.alloc_mem(local_n * 8).unwrap();
        let mut win = r.win_create(WinMemory::Alloc(mem)).unwrap();
        win.write_local(r, 0, &typed::to_bytes(&x_local));
        win.fence(r).unwrap();

        // --- my sparse rows (deterministic random pattern) ------------
        let mut rng = SplitMix64::new(0xBEEF + me as u64);
        let rows: Vec<Vec<(usize, f64)>> = (0..ROWS_PER_RANK)
            .map(|_| {
                (0..NNZ_PER_ROW)
                    .map(|_| {
                        let col = rng.next_below(N as u64) as usize;
                        let val = rng.next_f64() * 2.0 - 1.0;
                        (col, val)
                    })
                    .collect()
            })
            .collect();

        // --- one-sided gather of the needed x entries ------------------
        let t0 = r.now();
        let mut fetched = std::collections::HashMap::<usize, f64>::new();
        for row in &rows {
            for &(col, _) in row {
                if fetched.contains_key(&col) {
                    continue;
                }
                let owner = col / local_n;
                let off = (col % local_n) * 8;
                let v = if owner == me {
                    x_local[col % local_n]
                } else {
                    let mut buf = [0u8; 8];
                    win.get(r, owner, off, &mut buf).expect("get in range");
                    f64::from_le_bytes(buf)
                };
                fetched.insert(col, v);
            }
        }
        win.fence(r).unwrap();
        let gather_time = r.now() - t0;

        // --- local SpMV ------------------------------------------------
        let y: Vec<f64> = rows
            .iter()
            .map(|row| row.iter().map(|&(c, v)| v * fetched[&c]).sum())
            .collect();
        r.compute(SimDuration::from_us(30));

        // --- verification against a serial reference -------------------
        let x_global: Vec<f64> = (0..N).map(|i| (i as f64).sin()).collect();
        let y_ref: Vec<f64> = rows
            .iter()
            .map(|row| row.iter().map(|&(c, v)| v * x_global[c]).sum())
            .collect();
        let max_err = y
            .iter()
            .zip(&y_ref)
            .map(|(a, b)| (a - b).abs())
            .fold(0.0f64, f64::max);
        let remote = fetched.len();
        (me, gather_time, remote, max_err)
    });

    println!("sparse matrix-vector product, {ranks} ranks, {N} global entries");
    println!("{ROWS_PER_RANK} rows x {NNZ_PER_ROW} nnz per rank, one-sided gathers\n");
    for (me, t, fetched, err) in results {
        assert!(err < 1e-12, "rank {me} verification failed: err {err}");
        println!(
            "rank {me}: fetched {fetched:>4} distinct entries in {:>10}  (max err {err:.1e})",
            format!("{t}")
        );
    }
    println!("\nall ranks verified against the serial reference.");
}
