//! Ocean-model halo exchange — the paper's motivating application (§3,
//! Figure 2, citing Ashworth's OCCOMM benchmark).
//!
//! A 3-D ocean grid (x: east-west, y: north-south, z: depth) is
//! decomposed along the two horizontal dimensions. Exchanging the
//! north/south boundary planes produces **strided** data (one row per
//! depth level); the east/west planes are contiguous per level but
//! strided across levels — exactly the access patterns `direct_pack_ff`
//! targets.
//!
//! The example runs a Jacobi-style stencil relaxation on a 2×2 process
//! grid, does real halo exchanges with derived datatypes, verifies the
//! numerics, and reports the virtual communication time of the generic
//! engine vs `direct_pack_ff`.
//!
//! Run: `cargo run --release --example ocean`

use mpi_datatype::{typed, Committed, Datatype};
use scimpi::prelude::*;
use simclock::SimDuration;

/// Local grid: NX × NY columns × NZ depth levels per rank (f64 cells),
/// stored z-major: `idx = (z * NY + y) * NX + x`, plus a one-cell halo in
/// x and y.
const NX: usize = 34; // 32 interior + 2 halo
const NY: usize = 34;
const NZ: usize = 8;
const CELLS: usize = NX * NY * NZ;

fn idx(x: usize, y: usize, z: usize) -> usize {
    (z * NY + y) * NX + x
}

/// Datatype for a north/south boundary plane: for each depth level, one
/// row of NX cells — contiguous rows strided NY·NX apart.
fn ns_plane() -> Committed {
    let row = Datatype::contiguous(NX, &Datatype::double());
    let dt = Datatype::hvector(NZ, 1, (NY * NX * 8) as i64, &row);
    Committed::commit(&dt)
}

/// Datatype for an east/west boundary plane: one cell per row, strided
/// NX apart, NY rows per level, NZ levels — a doubly-strided type
/// (Figure 2's "double-strided data").
fn ew_plane() -> Committed {
    let col = Datatype::vector(NY, 1, NX as isize, &Datatype::double());
    let dt = Datatype::hvector(NZ, 1, (NY * NX * 8) as i64, &col);
    Committed::commit(&dt)
}

struct HaloTime {
    comm: SimDuration,
    checksum: f64,
}

fn simulate(tuning: Tuning, steps: usize) -> Vec<HaloTime> {
    // 2×2 process grid on 4 nodes.
    let spec = ClusterSpec::ringlet(4).tuning(tuning);
    run(spec, move |r| {
        let me = r.rank();
        let (px, py) = (me % 2, me / 2);
        let mut grid = vec![0.0f64; CELLS];
        // Deterministic initial condition distinguishable per rank.
        for z in 0..NZ {
            for y in 1..NY - 1 {
                for x in 1..NX - 1 {
                    grid[idx(x, y, z)] = ((x * 7 + y * 13 + z * 29 + me * 31) % 97) as f64 / 97.0;
                }
            }
        }
        let ns = ns_plane();
        let ew = ew_plane();
        let mut comm = SimDuration::ZERO;

        for _step in 0..steps {
            let mut bytes = typed::to_bytes(&grid);
            // --- halo exchange (periodic in both directions) ----------
            let west = py * 2 + (px + 1) % 2;
            let north = ((py + 1) % 2) * 2 + px;
            let t0 = r.now();

            // East-west: send column x=1, receive into halo x=NX-1 (and
            // vice versa). Periodic with the single horizontal neighbour.
            let send_off = idx(1, 0, 0) * 8;
            let recv_off = idx(NX - 1, 0, 0) * 8;
            r.sendrecv(
                west,
                10,
                SendData::Typed {
                    c: &ew,
                    count: 1,
                    buf: &bytes.clone(),
                    origin: send_off,
                },
                Source::Rank(west),
                TagSel::Value(10),
                RecvBuf::Typed {
                    c: &ew,
                    count: 1,
                    buf: &mut bytes,
                    origin: recv_off,
                },
            )
            .done();
            let send_off = idx(NX - 2, 0, 0) * 8;
            let recv_off = idx(0, 0, 0) * 8;
            r.sendrecv(
                west,
                11,
                SendData::Typed {
                    c: &ew,
                    count: 1,
                    buf: &bytes.clone(),
                    origin: send_off,
                },
                Source::Rank(west),
                TagSel::Value(11),
                RecvBuf::Typed {
                    c: &ew,
                    count: 1,
                    buf: &mut bytes,
                    origin: recv_off,
                },
            )
            .done();
            // North-south: row y=1 down, row y=NY-2 up.
            let send_off = idx(0, 1, 0) * 8;
            let recv_off = idx(0, NY - 1, 0) * 8;
            r.sendrecv(
                north,
                12,
                SendData::Typed {
                    c: &ns,
                    count: 1,
                    buf: &bytes.clone(),
                    origin: send_off,
                },
                Source::Rank(north),
                TagSel::Value(12),
                RecvBuf::Typed {
                    c: &ns,
                    count: 1,
                    buf: &mut bytes,
                    origin: recv_off,
                },
            )
            .done();
            let send_off = idx(0, NY - 2, 0) * 8;
            let recv_off = idx(0, 0, 0) * 8;
            r.sendrecv(
                north,
                13,
                SendData::Typed {
                    c: &ns,
                    count: 1,
                    buf: &bytes.clone(),
                    origin: send_off,
                },
                Source::Rank(north),
                TagSel::Value(13),
                RecvBuf::Typed {
                    c: &ns,
                    count: 1,
                    buf: &mut bytes,
                    origin: recv_off,
                },
            )
            .done();
            comm += r.now() - t0;
            grid = typed::from_bytes(&bytes);

            // --- one Jacobi relaxation sweep (interior only) ----------
            let old = grid.clone();
            for z in 0..NZ {
                for y in 1..NY - 1 {
                    for x in 1..NX - 1 {
                        grid[idx(x, y, z)] = 0.25
                            * (old[idx(x - 1, y, z)]
                                + old[idx(x + 1, y, z)]
                                + old[idx(x, y - 1, z)]
                                + old[idx(x, y + 1, z)]);
                    }
                }
            }
            // Charge the compute phase so the overlap ratio is realistic.
            r.compute(SimDuration::from_us(180));
        }
        let checksum: f64 = grid.iter().sum();
        HaloTime { comm, checksum }
    })
}

fn main() {
    let steps = 10;
    println!("ocean halo exchange, 2x2 ranks, {NX}x{NY}x{NZ} local grid, {steps} steps\n");
    let generic = simulate(Tuning::default().generic_only(), steps);
    let ff = simulate(Tuning::default().full_ff_comparison(), steps);

    // Identical numerics regardless of engine.
    for (g, f) in generic.iter().zip(ff.iter()) {
        assert!(
            (g.checksum - f.checksum).abs() < 1e-9,
            "engines disagree: {} vs {}",
            g.checksum,
            f.checksum
        );
    }
    println!(
        "numerics identical across engines (checksum {:.6})\n",
        generic[0].checksum
    );

    println!("virtual halo-exchange time per rank:");
    println!("rank   generic      direct_pack_ff   speedup");
    for (i, (g, f)) in generic.iter().zip(ff.iter()).enumerate() {
        println!(
            "  {i}    {:>9}    {:>12}     {:.2}x",
            format!("{}", g.comm),
            format!("{}", f.comm),
            g.comm.as_us_f64() / f.comm.as_us_f64()
        );
    }
}
